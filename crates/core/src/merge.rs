//! Model merging (§3 "Offline Training"): the model produced by a new training cycle is
//! merged into the previous one. Trees whose root templates are sufficiently similar are
//! combined (counts accumulate, children are merged recursively); dissimilar trees are
//! kept side by side as new roots. Temporary templates inserted by the online matcher are
//! dropped once a training cycle has had the chance to absorb their logs.

use crate::model::ParserModel;
use crate::tree::{NodeId, TemplateToken, TreeNode};

/// Similarity between two templates of the same length: the fraction of positions holding
/// exactly the same token (wildcards only match wildcards). Different lengths score 0.
pub fn template_similarity(a: &[TemplateToken], b: &[TemplateToken]) -> f64 {
    if a.len() != b.len() || a.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let matching = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
    matching as f64 / a.len() as f64
}

/// Merge `incoming` into `base`. Roots of `incoming` whose template similarity with some
/// root of `base` reaches `threshold` are merged into that root (recursively); the rest
/// are appended as new roots. Temporary templates in `base` are removed first — their
/// logs are represented in `incoming` by construction (the service retrains on recent
/// logs, which include previously-unmatched ones).
pub fn merge_models(base: &ParserModel, incoming: &ParserModel, threshold: f64) -> ParserModel {
    let mut merged = ParserModel::new();
    // 1. Copy the non-temporary part of `base`.
    let mut base_to_merged: Vec<Option<NodeId>> = vec![None; base.nodes.len()];
    for root in &base.roots {
        if base.nodes[root.0].temporary || base.nodes[root.0].retired {
            continue;
        }
        copy_subtree(base, *root, None, &mut merged, &mut base_to_merged);
        let new_root = base_to_merged[root.0].expect("root was just copied");
        merged.add_root(new_root);
    }
    // 2. Fold in every tree of `incoming`.
    for root in &incoming.roots {
        let incoming_root = &incoming.nodes[root.0];
        // Find the most similar existing root of the same length.
        let mut best: Option<(NodeId, f64)> = None;
        for &candidate in &merged.roots {
            let similarity =
                template_similarity(&merged.nodes[candidate.0].template, &incoming_root.template);
            if best.map(|(_, s)| similarity > s).unwrap_or(true) {
                best = Some((candidate, similarity));
            }
        }
        match best {
            Some((target, similarity)) if similarity >= threshold => {
                merge_subtree(incoming, *root, target, &mut merged, threshold);
            }
            _ => {
                let mut incoming_to_merged: Vec<Option<NodeId>> = vec![None; incoming.nodes.len()];
                copy_subtree(incoming, *root, None, &mut merged, &mut incoming_to_merged);
                let new_root = incoming_to_merged[root.0].expect("root was just copied");
                merged.add_root(new_root);
            }
        }
    }
    merged.rebuild_match_order();
    merged
}

/// Deep-copy the subtree rooted at `node` from `source` into `target`.
fn copy_subtree(
    source: &ParserModel,
    node: NodeId,
    parent: Option<NodeId>,
    target: &mut ParserModel,
    mapping: &mut Vec<Option<NodeId>>,
) {
    let source_node = &source.nodes[node.0];
    let new_id = target.push_node(TreeNode {
        id: NodeId(0),
        parent: None,
        children: Vec::new(),
        template: source_node.template.clone(),
        saturation: source_node.saturation,
        depth: source_node.depth,
        log_count: source_node.log_count,
        unique_count: source_node.unique_count,
        temporary: source_node.temporary,
        retired: source_node.retired,
    });
    mapping[node.0] = Some(new_id);
    if let Some(parent) = parent {
        target.attach_child(parent, new_id);
    }
    for &child in &source_node.children {
        copy_subtree(source, child, Some(new_id), target, mapping);
    }
}

/// Merge the subtree rooted at `incoming_node` into the existing node `target_node`:
/// counts accumulate; each incoming child is merged into the most similar existing child
/// when similarity reaches the threshold, and copied as a new child otherwise.
fn merge_subtree(
    incoming: &ParserModel,
    incoming_node: NodeId,
    target_node: NodeId,
    merged: &mut ParserModel,
    threshold: f64,
) {
    let source = &incoming.nodes[incoming_node.0];
    {
        let target = &mut merged.nodes[target_node.0];
        target.log_count += source.log_count;
        target.unique_count += source.unique_count;
        // Generalise the template where the two trees disagree: any position that differs
        // becomes a wildcard (the merged node covers both populations).
        if target.template.len() == source.template.len() {
            for (t, s) in target.template.iter_mut().zip(source.template.iter()) {
                if t != s {
                    *t = TemplateToken::Wildcard;
                }
            }
        }
        // The merged node is at least as coarse as either input.
        target.saturation = target.saturation.min(source.saturation);
    }
    for &incoming_child in &incoming.nodes[incoming_node.0].children {
        let child_template = &incoming.nodes[incoming_child.0].template;
        let mut best: Option<(NodeId, f64)> = None;
        for &existing_child in &merged.nodes[target_node.0].children {
            let similarity =
                template_similarity(&merged.nodes[existing_child.0].template, child_template);
            if best.map(|(_, s)| similarity > s).unwrap_or(true) {
                best = Some((existing_child, similarity));
            }
        }
        match best {
            Some((existing, similarity)) if similarity >= threshold => {
                merge_subtree(incoming, incoming_child, existing, merged, threshold);
            }
            _ => {
                let mut mapping: Vec<Option<NodeId>> = vec![None; incoming.nodes.len()];
                copy_subtree(
                    incoming,
                    incoming_child,
                    Some(target_node),
                    merged,
                    &mut mapping,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::matcher::match_record;
    use crate::train::train;
    use logtok::Preprocessor;

    fn t(parts: &[&str]) -> Vec<TemplateToken> {
        parts
            .iter()
            .map(|p| {
                if *p == "*" {
                    TemplateToken::Wildcard
                } else {
                    TemplateToken::Const(p.to_string())
                }
            })
            .collect()
    }

    #[test]
    fn similarity_of_identical_templates_is_one() {
        let a = t(&["open", "*", "ok"]);
        assert_eq!(template_similarity(&a, &a), 1.0);
    }

    #[test]
    fn similarity_of_different_lengths_is_zero() {
        assert_eq!(template_similarity(&t(&["a"]), &t(&["a", "b"])), 0.0);
    }

    #[test]
    fn similarity_counts_matching_positions() {
        let a = t(&["open", "*", "ok"]);
        let b = t(&["open", "*", "failed"]);
        assert!((template_similarity(&a, &b) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merging_identical_corpora_keeps_matching_working_and_accumulates_counts() {
        let records: Vec<String> = (0..40)
            .map(|i| format!("job {} finished in {}ms", i, i * 3))
            .collect();
        let config = TrainConfig::default();
        let first = train(&records, &config).model;
        let second = train(&records, &config).model;
        let merged = merge_models(&first, &second, 0.5);
        assert_eq!(merged.trained_records(), 2 * records.len() as u64);
        let pre = Preprocessor::new(config.preprocess.clone());
        let result = match_record(&merged, &pre, "job 999 finished in 5ms");
        assert!(result.is_matched());
    }

    #[test]
    fn dissimilar_trees_stay_separate_roots() {
        let a_records: Vec<String> = (0..20).map(|i| format!("cache hit for key {i}")).collect();
        let b_records: Vec<String> = (0..20)
            .map(|i| format!("connection refused from 10.0.0.{i} after retry"))
            .collect();
        let config = TrainConfig::default();
        let a = train(&a_records, &config).model;
        let b = train(&b_records, &config).model;
        let merged = merge_models(&a, &b, 0.6);
        assert_eq!(merged.roots.len(), a.roots.len() + b.roots.len());
        let pre = Preprocessor::new(config.preprocess.clone());
        assert!(match_record(&merged, &pre, "cache hit for key 7").is_matched());
        assert!(match_record(
            &merged,
            &pre,
            "connection refused from 10.0.0.9 after retry"
        )
        .is_matched());
    }

    #[test]
    fn temporary_templates_are_dropped_on_merge() {
        let records: Vec<String> = (0..20).map(|i| format!("metric {} emitted", i)).collect();
        let config = TrainConfig::default();
        let mut base = train(&records, &config).model;
        base.insert_temporary(&["unseen".into(), "event".into()]);
        assert_eq!(base.temporary_count(), 1);
        let incoming = train(&records, &config).model;
        let merged = merge_models(&base, &incoming, 0.5);
        assert_eq!(merged.temporary_count(), 0);
    }

    #[test]
    fn merged_template_generalises_disagreements() {
        let mut base = ParserModel::new();
        let root_a = base.push_node(TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: t(&["status", "ok", "code", "200"]),
            saturation: 1.0,
            depth: 0,
            log_count: 5,
            unique_count: 1,
            temporary: false,
            retired: false,
        });
        base.add_root(root_a);
        base.rebuild_match_order();

        let mut incoming = ParserModel::new();
        let root_b = incoming.push_node(TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: t(&["status", "ok", "code", "404"]),
            saturation: 1.0,
            depth: 0,
            log_count: 3,
            unique_count: 1,
            temporary: false,
            retired: false,
        });
        incoming.add_root(root_b);
        incoming.rebuild_match_order();

        let merged = merge_models(&base, &incoming, 0.7);
        assert_eq!(merged.roots.len(), 1);
        let root = &merged.nodes[merged.roots[0].0];
        assert_eq!(root.template_text(), "status ok code *");
        assert_eq!(root.log_count, 8);
    }
}
