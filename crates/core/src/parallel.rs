//! Minimal work-stealing-free parallel map used by training and matching.
//!
//! The paper parallelises preprocessing, per-group clustering, online matching and query
//! processing, but caps production deployments at 1–5 cores (§3 "Parallel"). A simple
//! chunked scoped-thread map is all that is needed: tasks are independent (one per initial
//! group or one per batch of logs) and results are re-ordered by the caller.

/// Apply `f` to every item of `items`, using up to `workers` OS threads. With
/// `workers <= 1` (or a single item) the map runs inline on the calling thread.
///
/// Results are returned in an arbitrary order; callers that need the input order should
/// carry the index inside the item (as `train_from_batch` does).
pub fn run_parallel<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = workers.min(items.len());
    // Split items into `workers` contiguous chunks of near-equal size.
    let chunk_size = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sequential_path_preserves_order() {
        let out = run_parallel(1, vec![1, 2, 3, 4], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn parallel_path_produces_all_results() {
        let input: Vec<u64> = (0..1000).collect();
        let out = run_parallel(4, input.clone(), |x| x * 2);
        let expected: HashSet<u64> = input.iter().map(|x| x * 2).collect();
        let got: HashSet<u64> = out.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn more_workers_than_items() {
        let out = run_parallel(16, vec![1, 2, 3], |x| x + 1);
        let got: HashSet<i32> = out.into_iter().collect();
        assert_eq!(got, HashSet::from([2, 3, 4]));
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_parallel(4, Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn heavy_closure_runs_concurrently_without_loss() {
        let input: Vec<usize> = (0..64).collect();
        let out = run_parallel(8, input, |x| {
            // Small busy loop so threads overlap.
            let mut acc = 0usize;
            for i in 0..1000 {
                acc = acc.wrapping_add(i * x);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 64);
        let xs: HashSet<usize> = out.iter().map(|(x, _)| *x).collect();
        assert_eq!(xs.len(), 64);
    }
}
