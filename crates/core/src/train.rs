//! Offline training (§3 "Offline Training"): preprocessing → initial grouping →
//! per-group hierarchical clustering → model assembly.

use crate::cluster::{cluster_group, LocalNode};
use crate::config::TrainConfig;
use crate::grouping::initial_groups;
use crate::model::ParserModel;
use crate::parallel::run_parallel;
use crate::tree::{NodeId, TreeNode};
use logtok::{PreprocessedBatch, Preprocessor, UniqueLog};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of one training run.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The trained model.
    pub model: ParserModel,
    /// For every input record, the node id its unique log was assigned to by clustering
    /// (the most precise template containing it). Used by the "w/ naive match" ablation
    /// variant and by tests.
    pub training_assignment: Vec<NodeId>,
    /// Preprocessing statistics of the training batch.
    pub dedup_stats: logtok::DedupStats,
}

/// Train a model from raw records.
pub fn train(records: &[String], config: &TrainConfig) -> TrainOutcome {
    let preprocessor = Preprocessor::new(config.preprocess.clone());
    // OOM guard (§3): sample uniformly when the batch exceeds the configured cap.
    let sampled: Vec<String>;
    let records = if records.len() > config.max_training_records {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5A5A);
        let mut indices: Vec<usize> = (0..records.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(config.max_training_records);
        indices.sort_unstable();
        sampled = indices.iter().map(|&i| records[i].clone()).collect();
        &sampled[..]
    } else {
        records
    };
    let batch = preprocessor.preprocess(records);
    train_from_batch(&batch, config)
}

/// Train a model from an already-preprocessed batch (used by the service layer, which
/// preprocesses incrementally as records arrive).
pub fn train_from_batch(batch: &PreprocessedBatch, config: &TrainConfig) -> TrainOutcome {
    let unique_logs = &batch.unique_logs;
    let groups = initial_groups(unique_logs, config.prefix_tokens);

    // Cluster every initial group, in parallel when requested. Each task returns the
    // group's member indices alongside its local tree so results can be assembled in a
    // deterministic order.
    let group_inputs: Vec<(usize, Vec<usize>)> = groups
        .iter()
        .enumerate()
        .map(|(i, g)| (i, g.members.clone()))
        .collect();
    let config_ref = config;
    let results: Vec<(usize, Vec<usize>, Vec<LocalNode>)> = run_parallel(
        config.parallelism,
        group_inputs,
        move |(group_idx, members)| {
            let group_logs: Vec<UniqueLog> =
                members.iter().map(|&m| unique_logs[m].clone()).collect();
            let local = cluster_group(
                &group_logs,
                config_ref,
                config_ref.seed ^ (group_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            (group_idx, members, local)
        },
    );
    let mut ordered = results;
    ordered.sort_by_key(|(idx, _, _)| *idx);

    let mut model = ParserModel::new();
    // unique-log index → most precise node id.
    let mut unique_assignment: Vec<Option<NodeId>> = vec![None; unique_logs.len()];

    for (_, members, local_nodes) in &ordered {
        // First pass: create global nodes; remember local → global mapping.
        let mut local_to_global: Vec<NodeId> = Vec::with_capacity(local_nodes.len());
        for local in local_nodes {
            let unique_count = local.members.len() as u64;
            let node = TreeNode {
                id: NodeId(0),
                parent: None,
                children: Vec::new(),
                template: local.template.clone(),
                saturation: local.saturation,
                depth: local.depth,
                log_count: local.log_count,
                unique_count,
                temporary: false,
                retired: false,
            };
            local_to_global.push(model.push_node(node));
        }
        // Second pass: wire parents/children and register the root.
        for (local_idx, local) in local_nodes.iter().enumerate() {
            match local.parent {
                Some(parent_local) => {
                    model.attach_child(local_to_global[parent_local], local_to_global[local_idx]);
                }
                None => model.add_root(local_to_global[local_idx]),
            }
        }
        // Third pass: assign every unique log to its most precise (deepest) node. Leaves
        // partition the group's members, so walking the leaves covers everything.
        for (local_idx, local) in local_nodes.iter().enumerate() {
            if local.children.is_empty() {
                for &member_slot in &local.members {
                    let global_unique_idx = members[member_slot];
                    unique_assignment[global_unique_idx] = Some(local_to_global[local_idx]);
                }
            }
        }
    }
    model.rebuild_match_order();

    // Expand the per-unique-log assignment to per-record.
    let training_assignment: Vec<NodeId> = batch
        .record_to_unique
        .iter()
        .map(|&u| unique_assignment[u].expect("every unique log is assigned to a leaf"))
        .collect();

    TrainOutcome {
        model,
        training_assignment,
        dedup_stats: batch.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;

    fn ssh_like_records() -> Vec<String> {
        let mut records = Vec::new();
        for i in 0..30 {
            records.push(format!(
                "Accepted password for user{} from 10.0.0.{} port 22 ssh2",
                i % 5,
                i % 9
            ));
            records.push(format!("Connection closed by 10.0.0.{}", i % 9));
            records.push(format!(
                "Failed password for invalid user guest{} from 10.1.1.{} port 22 ssh2",
                i % 3,
                i % 7
            ));
        }
        records
    }

    #[test]
    fn training_builds_a_nonempty_model() {
        let records = ssh_like_records();
        let outcome = train(&records, &TrainConfig::default());
        assert!(!outcome.model.is_empty());
        assert_eq!(outcome.training_assignment.len(), records.len());
        assert!(
            outcome.model.roots.len() >= 2,
            "length grouping should give ≥2 roots"
        );
    }

    #[test]
    fn assignment_points_to_matching_templates() {
        let records = ssh_like_records();
        let config = TrainConfig::default();
        let outcome = train(&records, &config);
        let preprocessor = logtok::Preprocessor::new(config.preprocess.clone());
        for (record, node_id) in records.iter().zip(&outcome.training_assignment) {
            let tokens = preprocessor.tokens_of(record);
            let node = outcome.model.node(*node_id).unwrap();
            assert!(
                node.matches_tokens(&tokens),
                "record {record:?} assigned to non-matching template {:?}",
                node.template_text()
            );
        }
    }

    #[test]
    fn record_counts_are_preserved() {
        let records = ssh_like_records();
        let outcome = train(&records, &TrainConfig::default());
        assert_eq!(outcome.model.trained_records(), records.len() as u64);
        assert_eq!(outcome.dedup_stats.total_records, records.len() as u64);
        assert!(outcome.dedup_stats.unique_records < records.len() as u64);
    }

    #[test]
    fn distinct_log_statements_get_distinct_leaf_templates() {
        let records = ssh_like_records();
        let outcome = train(&records, &TrainConfig::default());
        let accepted = &outcome.training_assignment[0];
        let closed = &outcome.training_assignment[1];
        assert_ne!(
            accepted, closed,
            "structurally different logs must not share a leaf"
        );
    }

    #[test]
    fn sampling_caps_training_size() {
        let records: Vec<String> = (0..500)
            .map(|i| format!("event number {i} occurred"))
            .collect();
        let config = TrainConfig {
            max_training_records: 100,
            ..TrainConfig::default()
        };
        let outcome = train(&records, &config);
        assert!(outcome.model.trained_records() <= 100);
    }

    #[test]
    fn parallel_training_matches_sequential_structure() {
        let records = ssh_like_records();
        let seq = train(&records, &TrainConfig::default().with_parallelism(1));
        let par = train(&records, &TrainConfig::default().with_parallelism(4));
        assert_eq!(seq.model.roots.len(), par.model.roots.len());
        assert_eq!(seq.model.len(), par.model.len());
        // Identical seeds per group make the trees identical regardless of thread count.
        let seq_templates: Vec<String> =
            seq.model.nodes.iter().map(|n| n.template_text()).collect();
        let par_templates: Vec<String> =
            par.model.nodes.iter().map(|n| n.template_text()).collect();
        assert_eq!(seq_templates, par_templates);
    }

    #[test]
    fn empty_input_trains_empty_model() {
        let outcome = train(&[], &TrainConfig::default());
        assert!(outcome.model.is_empty());
        assert!(outcome.training_assignment.is_empty());
    }
}
