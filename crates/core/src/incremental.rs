//! Online incremental model maintenance.
//!
//! The paper's two-phase design keeps matching fast by pushing everything expensive
//! into periodic offline training — but a full retrain is a stop-the-world pause on
//! the topic: the whole training buffer is re-clustered and the resulting model
//! renumbers every template, forcing stored records to be re-matched. For
//! long-running topics whose workload *drifts* (new log statements appear, old ones
//! decay), this module provides the middle path, analogous to answering queries
//! under updates: small deltas are absorbed without recomputation.
//!
//! Three pieces:
//!
//! * [`DriftDetector`] — deterministic per-shard sliding windows over match
//!   outcomes. It raises [`DriftDecision::UnmatchedSurge`] when a shard's
//!   unmatched rate exceeds a bound and [`DriftDecision::SaturationDecay`] when
//!   the mean saturation of matched records decays below the baseline established
//!   on healthy traffic (coarse ancestors start absorbing what used to hit precise
//!   leaves).
//! * [`train_delta`] — folds a small batch (typically the topic's unmatched
//!   buffer) into an existing model *as a delta*: the batch is clustered on its
//!   own (cheap — it is orders of magnitude smaller than the training buffer) and
//!   the resulting trees are expressed as copy-on-write [`NodePatch`]es against
//!   existing nodes plus [`NewNode`] subtrees, using exactly the same
//!   similarity-driven cluster-merge rules as [`merge_models`](crate::merge::merge_models).
//! * [`apply_delta`] — materialises a new [`ParserModel`] from a base model and a
//!   [`ModelDelta`]. Existing [`NodeId`]s are preserved (patches mutate in place,
//!   new nodes append), so stored records keep valid template ids and no re-match
//!   pass is needed; absorbed temporary templates are retired, not removed.
//!
//! [`ModelDelta`] is serializable, so the model store can persist delta lineage
//! (base snapshot + chain of deltas) and reconstruct any version.
//!
//! ```
//! use bytebrain::incremental::{apply_delta, train_delta};
//! use bytebrain::train::train;
//! use bytebrain::TrainConfig;
//!
//! let config = TrainConfig::default();
//! let base: Vec<String> = (0..50).map(|i| format!("request {i} served in {i}ms")).collect();
//! let model = train(&base, &config).model;
//! let drift: Vec<String> = (0..20).map(|i| format!("cache miss for key k{i}")).collect();
//! let delta = train_delta(&model, &drift, &config, 0.6);
//! let updated = apply_delta(&model, &delta);
//! assert!(updated.len() > model.len());
//! ```

use crate::merge::template_similarity;
use crate::model::ParserModel;
use crate::train::train;
use crate::tree::{NodeId, TemplateToken, TreeNode};
use crate::TrainConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------------

/// Configuration of the [`DriftDetector`]'s sliding windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Number of most recent observations kept per shard.
    pub window: usize,
    /// Minimum observations in a shard window before it is assessed.
    pub min_samples: usize,
    /// A shard drifts when its windowed unmatched rate reaches this bound.
    pub max_unmatched_rate: f64,
    /// A shard drifts when the windowed mean saturation of matched records falls
    /// this far below the baseline established on healthy traffic.
    pub max_saturation_drop: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 1_024,
            min_samples: 256,
            max_unmatched_rate: 0.05,
            max_saturation_drop: 0.15,
        }
    }
}

impl DriftConfig {
    /// Override the window size (clamped to at least 2; `min_samples` is clamped to it).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(2);
        self.min_samples = self.min_samples.min(self.window);
        self
    }

    /// Override the minimum sample count (clamped to `1..=window`).
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.clamp(1, self.window);
        self
    }

    /// Override the unmatched-rate bound.
    pub fn with_max_unmatched_rate(mut self, rate: f64) -> Self {
        self.max_unmatched_rate = rate;
        self
    }
}

/// The verdict of one [`DriftDetector::assess`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftDecision {
    /// No shard shows drift.
    Stable,
    /// A shard's windowed unmatched rate exceeded the configured bound.
    UnmatchedSurge {
        /// Shard whose window tripped the bound.
        shard: usize,
        /// Observed unmatched rate in the window.
        rate: f64,
    },
    /// A shard's windowed mean matched saturation decayed below the baseline.
    SaturationDecay {
        /// Shard whose window tripped the bound.
        shard: usize,
        /// Baseline mean saturation established on healthy traffic.
        baseline: f64,
        /// Current windowed mean saturation.
        current: f64,
    },
}

impl DriftDecision {
    /// True for any decision other than [`DriftDecision::Stable`].
    pub fn is_drifting(&self) -> bool {
        !matches!(self, DriftDecision::Stable)
    }
}

/// One shard's sliding window of match outcomes.
#[derive(Debug, Default, Clone)]
struct ShardWindow {
    /// `(matched, saturation)` of the most recent observations, oldest first.
    events: VecDeque<(bool, f64)>,
    unmatched: usize,
    matched_saturation_sum: f64,
}

/// Deterministic drift detector: per-shard sliding windows over `(matched,
/// saturation)` observations. No wall-clock state — identical observation
/// sequences always produce identical decisions, which is what the differential
/// test harness relies on.
#[derive(Debug, Default, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    shards: Vec<ShardWindow>,
    /// Mean matched saturation over the first full window of healthy traffic.
    baseline: Option<f64>,
    baseline_sum: f64,
    baseline_count: u64,
    observations: u64,
}

impl DriftDetector {
    /// A detector with the given window configuration.
    pub fn new(config: DriftConfig) -> Self {
        DriftDetector {
            config,
            shards: Vec::new(),
            baseline: None,
            baseline_sum: 0.0,
            baseline_count: 0,
            observations: 0,
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Total observations fed so far (across shards, including dropped ones).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The baseline mean matched saturation, once established.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// Record one match outcome from `shard`. `saturation` is the matched
    /// template's saturation (ignored for unmatched records).
    pub fn observe(&mut self, shard: usize, matched: bool, saturation: f64) {
        if shard >= self.shards.len() {
            self.shards.resize_with(shard + 1, ShardWindow::default);
        }
        self.observations += 1;
        // Establish the baseline from the first window's worth of matched records.
        if self.baseline.is_none() && matched {
            self.baseline_sum += saturation;
            self.baseline_count += 1;
            if self.baseline_count >= self.config.window as u64 {
                self.baseline = Some(self.baseline_sum / self.baseline_count as f64);
            }
        }
        let window = &mut self.shards[shard];
        window.events.push_back((matched, saturation));
        if matched {
            window.matched_saturation_sum += saturation;
        } else {
            window.unmatched += 1;
        }
        while window.events.len() > self.config.window {
            let (was_matched, sat) = window.events.pop_front().expect("window is non-empty");
            if was_matched {
                window.matched_saturation_sum -= sat;
            } else {
                window.unmatched -= 1;
            }
        }
    }

    /// Assess every shard window and return the first drift found (lowest shard id
    /// wins, unmatched surge checked before saturation decay).
    pub fn assess(&self) -> DriftDecision {
        for (shard, window) in self.shards.iter().enumerate() {
            let n = window.events.len();
            if n < self.config.min_samples {
                continue;
            }
            let rate = window.unmatched as f64 / n as f64;
            if rate >= self.config.max_unmatched_rate {
                return DriftDecision::UnmatchedSurge { shard, rate };
            }
            let matched = n - window.unmatched;
            if let Some(baseline) = self.baseline {
                if matched >= self.config.min_samples / 2 && matched > 0 {
                    let current = window.matched_saturation_sum / matched as f64;
                    if baseline - current >= self.config.max_saturation_drop {
                        return DriftDecision::SaturationDecay {
                            shard,
                            baseline,
                            current,
                        };
                    }
                }
            }
        }
        DriftDecision::Stable
    }

    /// Clear every shard window (called after maintenance absorbed the drift).
    /// The established baseline is kept: it describes healthy traffic, and the
    /// refreshed model is expected to return to it.
    pub fn reset_windows(&mut self) {
        for window in &mut self.shards {
            *window = ShardWindow::default();
        }
    }
}

// ---------------------------------------------------------------------------
// Model deltas
// ---------------------------------------------------------------------------

/// Where a [`NewNode`] attaches in the patched model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaParent {
    /// The node becomes a new clustering-tree root.
    Root,
    /// The node becomes a child of an existing node of the base model.
    Existing(NodeId),
    /// The node becomes a child of another new node (index into
    /// [`ModelDelta::new_nodes`]; always smaller than the child's own index).
    New(usize),
}

/// A copy-on-write patch against one existing node of the base model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodePatch {
    /// The patched node (id in the base model).
    pub node: NodeId,
    /// Raw-record count to add.
    pub log_count_add: u64,
    /// Distinct-log count to add.
    pub unique_count_add: u64,
    /// The node's new template (positions that disagreed with the folded batch
    /// become wildcards, exactly as in [`merge_models`](crate::merge::merge_models)).
    pub template: Vec<TemplateToken>,
    /// The node's new saturation (the merged node is at least as coarse as either
    /// input, so this is the minimum of the two).
    pub saturation: f64,
}

/// One node appended by a delta.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NewNode {
    /// Attachment point.
    pub parent: DeltaParent,
    /// Template of the new node.
    pub template: Vec<TemplateToken>,
    /// Saturation score.
    pub saturation: f64,
    /// Tree depth carried over from the delta-trained tree.
    pub depth: usize,
    /// Raw-record count covered.
    pub log_count: u64,
    /// Distinct-log count covered.
    pub unique_count: u64,
}

/// A serializable description of an incremental model update: copy-on-write
/// patches against existing nodes plus appended subtrees. Produced by
/// [`train_delta`], consumed by [`apply_delta`], persisted by the service's
/// model store to record delta lineage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelDelta {
    /// Number of nodes in the base model this delta was computed against
    /// (checked by [`apply_delta`]).
    pub base_nodes: usize,
    /// Patches to existing nodes.
    pub patches: Vec<NodePatch>,
    /// Appended nodes, parents always before children.
    pub new_nodes: Vec<NewNode>,
    /// Retire every active temporary template (their logs are represented in the
    /// folded batch by construction, mirroring how a full retrain drops them).
    pub retire_temporaries: bool,
    /// Number of raw records folded into this delta.
    pub batch_records: u64,
}

impl ModelDelta {
    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty() && self.new_nodes.is_empty() && !self.retire_temporaries
    }

    /// Number of nodes this delta appends.
    pub fn added_nodes(&self) -> usize {
        self.new_nodes.len()
    }

    /// Number of existing nodes this delta patches.
    pub fn patched_nodes(&self) -> usize {
        self.patches.len()
    }
}

// ---------------------------------------------------------------------------
// Delta training
// ---------------------------------------------------------------------------

/// A node handle inside the delta builder: either an existing base node or a
/// new node being assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Existing(NodeId),
    New(usize),
}

/// The merge fold of one incoming node into a target's working state: counts
/// accumulate, positions that disagree become wildcards, and the merged node is
/// at least as coarse as either input — exactly `merge_subtree`'s rules in
/// [`merge_models`](crate::merge::merge_models).
fn fold_node(
    log_count: &mut u64,
    unique_count: &mut u64,
    template: &mut [TemplateToken],
    saturation: &mut f64,
    source: &TreeNode,
) {
    *log_count += source.log_count;
    *unique_count += source.unique_count;
    if template.len() == source.template.len() {
        for (t, s) in template.iter_mut().zip(source.template.iter()) {
            if t != s {
                *t = TemplateToken::Wildcard;
            }
        }
    }
    *saturation = saturation.min(source.saturation);
}

/// Builder state: working copies of patched templates and the growing new-node
/// list, so that later merge decisions see earlier generalisations exactly as
/// [`merge_models`](crate::merge::merge_models) would.
struct DeltaBuilder<'m> {
    base: &'m ParserModel,
    threshold: f64,
    /// Patch working state per base node, indexed by `NodeId.0` (sparse).
    patches: Vec<Option<PatchState>>,
    /// Patched base nodes in first-touch order (deterministic output order).
    patched_order: Vec<NodeId>,
    new_nodes: Vec<NewNodeState>,
}

struct PatchState {
    log_count_add: u64,
    unique_count_add: u64,
    template: Vec<TemplateToken>,
    saturation: f64,
    /// New children appended under this existing node.
    children_added: Vec<usize>,
}

struct NewNodeState {
    parent: DeltaParent,
    template: Vec<TemplateToken>,
    saturation: f64,
    depth: usize,
    log_count: u64,
    unique_count: u64,
    children: Vec<usize>,
}

impl<'m> DeltaBuilder<'m> {
    fn new(base: &'m ParserModel, threshold: f64) -> Self {
        DeltaBuilder {
            base,
            threshold,
            patches: (0..base.nodes.len()).map(|_| None).collect(),
            patched_order: Vec::new(),
            new_nodes: Vec::new(),
        }
    }

    /// The current template of a slot, reflecting any generalisation applied so far.
    fn template_of(&self, slot: Slot) -> &[TemplateToken] {
        match slot {
            Slot::Existing(id) => match &self.patches[id.0] {
                Some(patch) => &patch.template,
                None => &self.base.nodes[id.0].template,
            },
            Slot::New(idx) => &self.new_nodes[idx].template,
        }
    }

    /// Current children of a slot: base children first (base order), then new
    /// children in insertion order — matching the candidate order
    /// [`merge_models`](crate::merge::merge_models) iterates.
    fn children_of(&self, slot: Slot) -> Vec<Slot> {
        match slot {
            Slot::Existing(id) => {
                let mut out: Vec<Slot> = self.base.nodes[id.0]
                    .children
                    .iter()
                    .map(|&c| Slot::Existing(c))
                    .collect();
                if let Some(patch) = &self.patches[id.0] {
                    out.extend(patch.children_added.iter().map(|&i| Slot::New(i)));
                }
                out
            }
            Slot::New(idx) => self.new_nodes[idx]
                .children
                .iter()
                .map(|&i| Slot::New(i))
                .collect(),
        }
    }

    /// Ensure a patch working copy exists for `id` and return it.
    fn patch_mut(&mut self, id: NodeId) -> &mut PatchState {
        if self.patches[id.0].is_none() {
            let node = &self.base.nodes[id.0];
            self.patches[id.0] = Some(PatchState {
                log_count_add: 0,
                unique_count_add: 0,
                template: node.template.clone(),
                saturation: node.saturation,
                children_added: Vec::new(),
            });
            self.patched_order.push(id);
        }
        self.patches[id.0].as_mut().expect("patch just ensured")
    }

    /// Merge the subtree rooted at `incoming_node` (of the delta-trained mini
    /// model) into `target`: the delta-building mirror of `merge_subtree`.
    fn merge_subtree(&mut self, incoming: &ParserModel, incoming_node: NodeId, target: Slot) {
        let source = &incoming.nodes[incoming_node.0];
        // Accumulate counts and generalise the template where the inputs disagree —
        // one shared fold so the patch path and the new-node path cannot diverge.
        let (log_count, unique_count, template, saturation) = match target {
            Slot::Existing(id) => {
                let patch = self.patch_mut(id);
                (
                    &mut patch.log_count_add,
                    &mut patch.unique_count_add,
                    &mut patch.template,
                    &mut patch.saturation,
                )
            }
            Slot::New(idx) => {
                let node = &mut self.new_nodes[idx];
                (
                    &mut node.log_count,
                    &mut node.unique_count,
                    &mut node.template,
                    &mut node.saturation,
                )
            }
        };
        fold_node(log_count, unique_count, template, saturation, source);
        // Fold every incoming child into the most similar current child, or copy
        // it as a new child.
        for &incoming_child in &incoming.nodes[incoming_node.0].children {
            let child_template = &incoming.nodes[incoming_child.0].template;
            let mut best: Option<(Slot, f64)> = None;
            for candidate in self.children_of(target) {
                let similarity = template_similarity(self.template_of(candidate), child_template);
                if best.map(|(_, s)| similarity > s).unwrap_or(true) {
                    best = Some((candidate, similarity));
                }
            }
            match best {
                Some((existing, similarity)) if similarity >= self.threshold => {
                    self.merge_subtree(incoming, incoming_child, existing);
                }
                _ => {
                    let parent = match target {
                        Slot::Existing(id) => DeltaParent::Existing(id),
                        Slot::New(idx) => DeltaParent::New(idx),
                    };
                    self.copy_subtree(incoming, incoming_child, parent);
                }
            }
        }
    }

    /// Deep-copy the subtree rooted at `node` into the new-node list.
    fn copy_subtree(&mut self, incoming: &ParserModel, node: NodeId, parent: DeltaParent) -> usize {
        let source = &incoming.nodes[node.0];
        let idx = self.new_nodes.len();
        self.new_nodes.push(NewNodeState {
            parent,
            template: source.template.clone(),
            saturation: source.saturation,
            depth: source.depth,
            log_count: source.log_count,
            unique_count: source.unique_count,
            children: Vec::new(),
        });
        match parent {
            DeltaParent::Existing(id) => self.patch_mut(id).children_added.push(idx),
            DeltaParent::New(parent_idx) => self.new_nodes[parent_idx].children.push(idx),
            DeltaParent::Root => {}
        }
        for &child in &source.children {
            self.copy_subtree(incoming, child, DeltaParent::New(idx));
        }
        idx
    }

    fn finish(self, batch_records: u64) -> ModelDelta {
        let mut patches = Vec::new();
        for id in &self.patched_order {
            let state = self.patches[id.0].as_ref().expect("id was patched");
            patches.push(NodePatch {
                node: *id,
                log_count_add: state.log_count_add,
                unique_count_add: state.unique_count_add,
                template: state.template.clone(),
                saturation: state.saturation,
            });
        }
        let new_nodes = self
            .new_nodes
            .into_iter()
            .map(|n| NewNode {
                parent: n.parent,
                template: n.template,
                saturation: n.saturation,
                depth: n.depth,
                log_count: n.log_count,
                unique_count: n.unique_count,
            })
            .collect();
        ModelDelta {
            base_nodes: self.base.nodes.len(),
            patches,
            new_nodes,
            retire_temporaries: true,
            batch_records,
        }
    }
}

/// Train an incremental delta: cluster `records` (typically the topic's small
/// unmatched buffer) on their own and express the result as a [`ModelDelta`]
/// against `model`, using the same similarity-driven merge rules as
/// [`merge_models`](crate::merge::merge_models) with `merge_threshold`.
///
/// `apply_delta(model, train_delta(model, records, ..))` produces the same
/// templates as `merge_models(model, train(records, ..).model, ..)` — verified
/// by test — while preserving every existing [`NodeId`].
pub fn train_delta(
    model: &ParserModel,
    records: &[String],
    config: &TrainConfig,
    merge_threshold: f64,
) -> ModelDelta {
    let mut builder = DeltaBuilder::new(model, merge_threshold);
    if records.is_empty() {
        let mut delta = builder.finish(0);
        // Nothing was folded: keep active temporaries alive, they are not
        // represented anywhere else yet.
        delta.retire_temporaries = false;
        return delta;
    }
    let incoming = train(records, config).model;
    // Candidate roots: active (non-temporary, non-retired) base roots first, in
    // base order, then delta roots as they are added — the exact candidate order
    // `merge_models` sees.
    let mut root_candidates: Vec<Slot> = model
        .roots
        .iter()
        .filter(|r| {
            let node = &model.nodes[r.0];
            !node.temporary && !node.retired
        })
        .map(|&r| Slot::Existing(r))
        .collect();
    for root in &incoming.roots {
        let incoming_root = &incoming.nodes[root.0];
        let mut best: Option<(Slot, f64)> = None;
        for &candidate in &root_candidates {
            let similarity =
                template_similarity(builder.template_of(candidate), &incoming_root.template);
            if best.map(|(_, s)| similarity > s).unwrap_or(true) {
                best = Some((candidate, similarity));
            }
        }
        match best {
            Some((target, similarity)) if similarity >= merge_threshold => {
                builder.merge_subtree(&incoming, *root, target);
            }
            _ => {
                let idx = builder.copy_subtree(&incoming, *root, DeltaParent::Root);
                root_candidates.push(Slot::New(idx));
            }
        }
    }
    builder.finish(records.len() as u64)
}

/// Apply `delta` to `base`, returning the patched model. Existing node ids are
/// preserved: patches mutate in place, new nodes append after the base nodes,
/// and absorbed temporaries are retired rather than removed — so template ids
/// stored at ingest time stay valid and no re-match pass is required.
///
/// `base` may have *fewer* nodes than the model the delta was computed against:
/// the missing tail can only be temporary templates inserted after `base` was
/// persisted (nothing else appends nodes between maintenance runs), and the
/// delta retires them anyway. The base is padded with retired placeholder slots
/// so that appended node ids stay aligned with the live model — this is what
/// lets the model store replay a delta chain on top of a full snapshot that
/// never saw the ephemeral temporaries.
///
/// # Panics
/// Panics when `base` has more nodes than the model the delta was computed
/// against (the delta would mis-reference them — the store's lineage chain
/// prevents this).
pub fn apply_delta(base: &ParserModel, delta: &ModelDelta) -> ParserModel {
    assert!(
        base.nodes.len() <= delta.base_nodes,
        "delta was computed against a model with {} nodes, got {}",
        delta.base_nodes,
        base.nodes.len()
    );
    let mut model = base.clone();
    // Placeholder slots for live-only temporaries the persisted base never saw:
    // retired on arrival, never matched, never referenced by the delta.
    while model.nodes.len() < delta.base_nodes {
        model.push_node(TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: Vec::new(),
            saturation: 1.0,
            depth: 0,
            log_count: 0,
            unique_count: 0,
            temporary: true,
            retired: true,
        });
    }
    for patch in &delta.patches {
        let node = &mut model.nodes[patch.node.0];
        node.log_count += patch.log_count_add;
        node.unique_count += patch.unique_count_add;
        node.template = patch.template.clone();
        node.saturation = patch.saturation;
    }
    let mut new_ids: Vec<NodeId> = Vec::with_capacity(delta.new_nodes.len());
    for new in &delta.new_nodes {
        let id = model.push_node(TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: new.template.clone(),
            saturation: new.saturation,
            depth: new.depth,
            log_count: new.log_count,
            unique_count: new.unique_count,
            temporary: false,
            retired: false,
        });
        match new.parent {
            DeltaParent::Root => model.add_root(id),
            DeltaParent::Existing(parent) => model.attach_child(parent, id),
            DeltaParent::New(idx) => model.attach_child(new_ids[idx], id),
        }
        new_ids.push(id);
    }
    if delta.retire_temporaries {
        let absorbed: Vec<NodeId> = model
            .nodes
            .iter()
            .filter(|n| n.temporary && !n.retired)
            .map(|n| n.id)
            .collect();
        for id in absorbed {
            model.retire(id);
        }
    }
    model.rebuild_match_order();
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::match_record;
    use crate::merge::merge_models;
    use logtok::Preprocessor;

    fn base_records() -> Vec<String> {
        (0..60)
            .map(|i| format!("request {} served from cache {} in {}ms", i, i % 4, i % 9))
            .collect()
    }

    fn drift_records() -> Vec<String> {
        (0..30)
            .map(|i| format!("circuit breaker opened for upstream svc-{}", i % 6))
            .collect()
    }

    fn sorted_texts(model: &ParserModel) -> Vec<String> {
        let mut texts: Vec<String> = model
            .nodes
            .iter()
            .filter(|n| !n.retired)
            .map(|n| n.template_text())
            .collect();
        texts.sort();
        texts
    }

    #[test]
    fn delta_matches_merge_models_on_new_root_family() {
        let config = TrainConfig::default();
        let model = train(&base_records(), &config).model;
        let batch = drift_records();
        let delta = train_delta(&model, &batch, &config, 0.6);
        let patched = apply_delta(&model, &delta);
        let merged = merge_models(&model, &train(&batch, &config).model, 0.6);
        assert_eq!(sorted_texts(&patched), sorted_texts(&merged));
        assert_eq!(patched.roots.len(), merged.roots.len());
    }

    #[test]
    fn delta_matches_merge_models_when_folding_into_existing_trees() {
        let config = TrainConfig::default();
        let model = train(&base_records(), &config).model;
        // Same family, different value distribution: folds into the existing trees.
        let batch: Vec<String> = (100..140)
            .map(|i| format!("request {} served from cache {} in {}ms", i, i % 3, i % 7))
            .collect();
        let delta = train_delta(&model, &batch, &config, 0.6);
        let patched = apply_delta(&model, &delta);
        let merged = merge_models(&model, &train(&batch, &config).model, 0.6);
        assert_eq!(sorted_texts(&patched), sorted_texts(&merged));
        assert_eq!(patched.trained_records(), merged.trained_records());
    }

    #[test]
    fn apply_delta_preserves_existing_node_ids() {
        let config = TrainConfig::default();
        let model = train(&base_records(), &config).model;
        let delta = train_delta(&model, &drift_records(), &config, 0.6);
        let patched = apply_delta(&model, &delta);
        assert!(patched.len() >= model.len());
        for (before, after) in model.nodes.iter().zip(patched.nodes.iter()) {
            assert_eq!(before.id, after.id);
            assert_eq!(before.len(), after.len(), "template length changed");
            assert_eq!(before.parent, after.parent);
        }
    }

    #[test]
    fn patched_model_matches_both_old_and_new_patterns() {
        let config = TrainConfig::default();
        let model = train(&base_records(), &config).model;
        let delta = train_delta(&model, &drift_records(), &config, 0.6);
        let patched = apply_delta(&model, &delta);
        let pre = Preprocessor::new(config.preprocess.clone());
        assert!(
            match_record(&patched, &pre, "request 999 served from cache 1 in 3ms").is_matched()
        );
        assert!(
            match_record(&patched, &pre, "circuit breaker opened for upstream svc-99").is_matched()
        );
    }

    #[test]
    fn delta_retires_absorbed_temporaries() {
        let config = TrainConfig::default();
        let mut model = train(&base_records(), &config).model;
        let pre = Preprocessor::new(config.preprocess.clone());
        let temp_id =
            model.insert_temporary(&pre.tokens_of("circuit breaker opened for upstream svc-0"));
        assert_eq!(model.temporary_count(), 1);
        let delta = train_delta(&model, &drift_records(), &config, 0.6);
        let patched = apply_delta(&model, &delta);
        assert_eq!(patched.temporary_count(), 0);
        assert_eq!(patched.retired_count(), 1);
        assert!(patched.nodes[temp_id.0].retired);
        assert!(!patched.match_order().contains(&temp_id));
        // The absorbed pattern still matches — via a real template now.
        let result = match_record(&patched, &pre, "circuit breaker opened for upstream svc-0");
        assert!(result.is_matched());
        assert_ne!(result.node, Some(temp_id));
    }

    #[test]
    fn empty_batch_yields_empty_delta() {
        let config = TrainConfig::default();
        let model = train(&base_records(), &config).model;
        let delta = train_delta(&model, &[], &config, 0.6);
        assert!(delta.is_empty());
        assert_eq!(delta.batch_records, 0);
        let patched = apply_delta(&model, &delta);
        assert_eq!(patched.len(), model.len());
    }

    #[test]
    fn delta_round_trips_through_json() {
        let config = TrainConfig::default();
        let model = train(&base_records(), &config).model;
        let delta = train_delta(&model, &drift_records(), &config, 0.6);
        let payload = serde_json::to_string(&delta).expect("delta serializes");
        let restored: ModelDelta = serde_json::from_str(&payload).expect("delta deserializes");
        let a = apply_delta(&model, &delta);
        let b = apply_delta(&model, &restored);
        assert_eq!(sorted_texts(&a), sorted_texts(&b));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "delta was computed against a model")]
    fn apply_delta_rejects_wider_base() {
        let config = TrainConfig::default();
        let model = train(&base_records(), &config).model;
        let mut delta = train_delta(&model, &drift_records(), &config, 0.6);
        // Pretend the delta was computed against a narrower model: the wider live
        // model could hold nodes the delta never saw.
        delta.base_nodes = model.len() - 1;
        apply_delta(&model, &delta);
    }

    #[test]
    fn apply_delta_pads_narrower_base_with_retired_slots() {
        let config = TrainConfig::default();
        let persisted = train(&base_records(), &config).model;
        // The live model accumulated temporaries after `persisted` was stored.
        let mut live = persisted.clone();
        live.insert_temporary(&["ephemeral".into(), "event".into(), "one".into()]);
        live.insert_temporary(&["ephemeral".into(), "event".into(), "two".into()]);
        let delta = train_delta(&live, &drift_records(), &config, 0.6);
        let from_live = apply_delta(&live, &delta);
        let from_persisted = apply_delta(&persisted, &delta);
        // Node ids align: same width, and every active node carries the same template.
        assert_eq!(from_live.len(), from_persisted.len());
        for (a, b) in from_live.nodes.iter().zip(from_persisted.nodes.iter()) {
            if !a.retired && !b.retired {
                assert_eq!(a.template_text(), b.template_text());
            }
            assert_eq!(a.retired, b.retired, "retirement must align at {:?}", a.id);
        }
        assert_eq!(sorted_texts(&from_live), sorted_texts(&from_persisted));
    }

    // -- drift detector -----------------------------------------------------

    fn drift_config() -> DriftConfig {
        DriftConfig::default()
            .with_window(100)
            .with_min_samples(50)
            .with_max_unmatched_rate(0.2)
    }

    #[test]
    fn stable_traffic_is_stable() {
        let mut detector = DriftDetector::new(drift_config());
        for i in 0..500 {
            detector.observe(i % 4, true, 0.9);
        }
        assert_eq!(detector.assess(), DriftDecision::Stable);
        assert_eq!(detector.observations(), 500);
    }

    #[test]
    fn unmatched_surge_is_detected_per_shard() {
        let mut detector = DriftDetector::new(drift_config());
        for i in 0..400 {
            detector.observe(i % 4, true, 0.9);
        }
        // Shard 2 starts seeing unknown logs.
        for _ in 0..40 {
            detector.observe(2, false, 0.0);
        }
        match detector.assess() {
            DriftDecision::UnmatchedSurge { shard, rate } => {
                assert_eq!(shard, 2);
                assert!(rate >= 0.2);
            }
            other => panic!("expected unmatched surge, got {other:?}"),
        }
    }

    #[test]
    fn saturation_decay_is_detected() {
        let mut config = drift_config();
        config.max_saturation_drop = 0.2;
        let mut detector = DriftDetector::new(config);
        // Healthy traffic establishes a baseline near 0.95.
        for _ in 0..200 {
            detector.observe(0, true, 0.95);
        }
        assert!(detector.baseline().is_some());
        // Matches degrade to coarse ancestors.
        for _ in 0..100 {
            detector.observe(0, true, 0.5);
        }
        match detector.assess() {
            DriftDecision::SaturationDecay {
                shard,
                baseline,
                current,
            } => {
                assert_eq!(shard, 0);
                assert!(baseline > current);
            }
            other => panic!("expected saturation decay, got {other:?}"),
        }
    }

    #[test]
    fn reset_clears_windows_but_keeps_baseline() {
        let mut detector = DriftDetector::new(drift_config());
        for _ in 0..200 {
            detector.observe(0, true, 0.9);
        }
        for _ in 0..100 {
            detector.observe(0, false, 0.0);
        }
        assert!(detector.assess().is_drifting());
        let baseline = detector.baseline();
        detector.reset_windows();
        assert_eq!(detector.assess(), DriftDecision::Stable);
        assert_eq!(detector.baseline(), baseline);
    }

    #[test]
    fn detection_is_deterministic() {
        let run = || {
            let mut detector = DriftDetector::new(drift_config());
            for i in 0..1_000u64 {
                let shard = (i % 3) as usize;
                let matched = i % 7 != 0;
                detector.observe(shard, matched, if matched { 0.8 } else { 0.0 });
            }
            format!("{:?}", detector.assess())
        };
        assert_eq!(run(), run());
    }
}
