//! Positional similarity distance (§4.4, Eq. 2) and the per-cluster token statistics it
//! is computed from.
//!
//! Hash-encoded tokens are identifiers with no numerical meaning, so Euclidean distance
//! over the encodings (as used by SPINE's bag-of-words K-means) is meaningless. Instead,
//! the distance between a log `L` and a cluster `C` combines, for every token position:
//!
//! * the frequency `f_i(L, C)` of `L`'s token at position `i` among the cluster's logs
//!   (high frequency ⇒ the token is representative of the position), and
//! * a position importance weight `w_i = 1 / (n_i − 1)` where `n_i` is the number of
//!   distinct tokens the cluster has at position `i` (high variability ⇒ the position is
//!   probably a variable ⇒ it should influence the distance less).
//!
//! The weighted average `Σ w_i · f_i / Σ w_i` is a *similarity* in `[0, 1]`; the distance
//! is its complement, and each log is assigned to the minimum-distance (maximum
//! similarity) cluster.

use logtok::EncodedLog;
use std::collections::HashMap;

/// Per-position token statistics of a cluster of equal-length logs.
#[derive(Debug, Clone)]
pub struct ClusterProfile {
    /// Per position: token hash → weighted occurrence count.
    positions: Vec<HashMap<u64, u64>>,
    /// Sum of the `count` fields of the member logs (i.e. raw records, not unique logs).
    total_weight: u64,
    /// Number of unique (deduplicated) member logs.
    unique_count: usize,
}

impl ClusterProfile {
    /// Empty profile for logs with `num_positions` tokens.
    pub fn new(num_positions: usize) -> Self {
        ClusterProfile {
            positions: vec![HashMap::new(); num_positions],
            total_weight: 0,
            unique_count: 0,
        }
    }

    /// Build a profile from a set of member logs (all must have the same length).
    pub fn from_logs<'a, I>(num_positions: usize, logs: I) -> Self
    where
        I: IntoIterator<Item = &'a EncodedLog>,
    {
        let mut profile = ClusterProfile::new(num_positions);
        for log in logs {
            profile.add(log);
        }
        profile
    }

    /// Add one unique log (weighted by its duplicate count) to the profile.
    pub fn add(&mut self, log: &EncodedLog) {
        debug_assert_eq!(log.len(), self.positions.len());
        for (i, &token) in log.encoded.iter().enumerate() {
            *self.positions[i].entry(token).or_insert(0) += log.count;
        }
        self.total_weight += log.count;
        self.unique_count += 1;
    }

    /// Remove one unique log from the profile (inverse of [`ClusterProfile::add`]).
    pub fn remove(&mut self, log: &EncodedLog) {
        debug_assert_eq!(log.len(), self.positions.len());
        for (i, &token) in log.encoded.iter().enumerate() {
            if let Some(count) = self.positions[i].get_mut(&token) {
                *count = count.saturating_sub(log.count);
                if *count == 0 {
                    self.positions[i].remove(&token);
                }
            }
        }
        self.total_weight = self.total_weight.saturating_sub(log.count);
        self.unique_count = self.unique_count.saturating_sub(1);
    }

    /// Number of token positions.
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// Total weighted number of logs (raw records).
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Number of unique member logs.
    pub fn unique_count(&self) -> usize {
        self.unique_count
    }

    /// Number of distinct tokens at position `i`.
    pub fn distinct_at(&self, i: usize) -> usize {
        self.positions[i].len()
    }

    /// Weighted count of `token` at position `i`.
    pub fn count_at(&self, i: usize, token: u64) -> u64 {
        self.positions[i].get(&token).copied().unwrap_or(0)
    }

    /// The single token at position `i` when the position is constant, `None` otherwise.
    pub fn constant_token_at(&self, i: usize) -> Option<u64> {
        if self.positions[i].len() == 1 {
            self.positions[i].keys().next().copied()
        } else {
            None
        }
    }

    /// True when the profile contains no logs.
    pub fn is_empty(&self) -> bool {
        self.unique_count == 0
    }

    /// Positional similarity (Eq. 2) between `log` and this cluster, in `[0, 1]`.
    ///
    /// `position_importance = false` corresponds to the "w/o position importance"
    /// ablation variant: every position weight becomes 1.
    pub fn similarity(&self, log: &EncodedLog, position_importance: bool) -> f64 {
        debug_assert_eq!(log.len(), self.num_positions());
        if self.total_weight == 0 || self.positions.is_empty() {
            return 0.0;
        }
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for (i, &token) in log.encoded.iter().enumerate() {
            let n_i = self.positions[i].len();
            let weight = if position_importance {
                // `1/(n_i − 1)` from the paper; clamp the denominator so constant
                // positions (n_i = 1) get the maximum weight instead of dividing by zero.
                1.0 / ((n_i.saturating_sub(1)).max(1) as f64)
            } else {
                1.0
            };
            let frequency = self.count_at(i, token) as f64 / self.total_weight as f64;
            weighted_sum += weight * frequency;
            weight_total += weight;
        }
        if weight_total == 0.0 {
            0.0
        } else {
            weighted_sum / weight_total
        }
    }

    /// Positional similarity distance: `1 − similarity`.
    pub fn distance(&self, log: &EncodedLog, position_importance: bool) -> f64 {
        1.0 - self.similarity(log, position_importance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(tokens: &[&str]) -> EncodedLog {
        EncodedLog::from_tokens(tokens)
    }

    fn log_n(tokens: &[&str], count: u64) -> EncodedLog {
        let mut l = EncodedLog::from_tokens(tokens);
        l.count = count;
        l
    }

    #[test]
    fn identical_log_has_similarity_one() {
        let a = log(&["open", "file", "x"]);
        let profile = ClusterProfile::from_logs(3, [&a]);
        assert!((profile.similarity(&a, true) - 1.0).abs() < 1e-9);
        assert!(profile.distance(&a, true).abs() < 1e-9);
    }

    #[test]
    fn disjoint_log_has_similarity_zero() {
        let a = log(&["open", "file", "x"]);
        let b = log(&["close", "socket", "y"]);
        let profile = ClusterProfile::from_logs(3, [&a]);
        assert!(profile.similarity(&b, true).abs() < 1e-9);
        assert!((profile.distance(&b, true) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partially_matching_log_is_in_between() {
        let a = log(&["open", "file", "x"]);
        let b = log(&["open", "file", "y"]);
        let profile = ClusterProfile::from_logs(3, [&a]);
        let s = profile.similarity(&b, true);
        assert!(s > 0.5 && s < 1.0, "similarity was {s}");
    }

    #[test]
    fn variable_positions_are_downweighted() {
        // Cluster where the last position is highly variable: its weight should be low,
        // so a log matching the constant prefix is *more* similar with importance on.
        let members = [
            log(&["get", "user", "a"]),
            log(&["get", "user", "b"]),
            log(&["get", "user", "c"]),
            log(&["get", "user", "d"]),
        ];
        let profile = ClusterProfile::from_logs(3, members.iter());
        let candidate = log(&["get", "user", "zzz"]);
        let with = profile.similarity(&candidate, true);
        let without = profile.similarity(&candidate, false);
        assert!(with > without);
        assert!(with > 0.8, "constant prefix should dominate, got {with}");
    }

    #[test]
    fn duplicate_counts_weight_frequencies() {
        let common = log_n(&["status", "ok"], 99);
        let rare = log_n(&["status", "failed"], 1);
        let profile = ClusterProfile::from_logs(2, [&common, &rare]);
        let s_ok = profile.similarity(&log(&["status", "ok"]), true);
        let s_failed = profile.similarity(&log(&["status", "failed"]), true);
        assert!(s_ok > s_failed);
        assert_eq!(profile.total_weight(), 100);
        assert_eq!(profile.unique_count(), 2);
    }

    #[test]
    fn add_then_remove_restores_profile() {
        let a = log(&["a", "b"]);
        let b = log(&["a", "c"]);
        let mut profile = ClusterProfile::from_logs(2, [&a]);
        let before_distinct = profile.distinct_at(1);
        profile.add(&b);
        assert_eq!(profile.distinct_at(1), 2);
        profile.remove(&b);
        assert_eq!(profile.distinct_at(1), before_distinct);
        assert_eq!(profile.unique_count(), 1);
    }

    #[test]
    fn constant_token_detection() {
        let members = [log(&["put", "x"]), log(&["put", "y"])];
        let profile = ClusterProfile::from_logs(2, members.iter());
        assert!(profile.constant_token_at(0).is_some());
        assert!(profile.constant_token_at(1).is_none());
    }

    #[test]
    fn empty_profile_behaviour() {
        let profile = ClusterProfile::new(3);
        assert!(profile.is_empty());
        assert_eq!(profile.similarity(&log(&["a", "b", "c"]), true), 0.0);
    }

    #[test]
    fn assignment_prefers_structurally_closer_cluster() {
        // Two clusters: "release lock <id>" vs "acquire lock <id>"; a new release log must
        // be closer to the release cluster (the Fig. 1 scenario).
        let release = [
            log(&["release", "lock", "2337"]),
            log(&["release", "lock", "187"]),
        ];
        let acquire = [
            log(&["acquire", "lock", "23"]),
            log(&["acquire", "lock", "1661"]),
        ];
        let c_release = ClusterProfile::from_logs(3, release.iter());
        let c_acquire = ClusterProfile::from_logs(3, acquire.iter());
        let new_log = log(&["release", "lock", "62"]);
        assert!(c_release.distance(&new_log, true) < c_acquire.distance(&new_log, true));
    }
}
