//! High-level parser facade combining training, matching, querying and merging.

use crate::config::TrainConfig;
use crate::matcher::{match_batch, match_record, MatchResult};
use crate::merge::merge_models;
use crate::model::ParserModel;
use crate::query::{presentation_template, resolve_with_threshold};
use crate::train::{train, TrainOutcome};
use crate::tree::NodeId;
use logtok::Preprocessor;

/// The ByteBrain log parser: owns the preprocessing pipeline, the trained model, and the
/// configuration. This is the type examples and the service layer interact with.
#[derive(Debug)]
pub struct ByteBrainParser {
    config: TrainConfig,
    preprocessor: Preprocessor,
    model: ParserModel,
    /// Per-record node assignment of the *last* training batch (used by the "w/ naive
    /// match" ablation variant and by grouping-accuracy evaluation on training data).
    last_training_assignment: Vec<NodeId>,
}

impl ByteBrainParser {
    /// Create an untrained parser.
    pub fn new(config: TrainConfig) -> Self {
        let preprocessor = Preprocessor::new(config.preprocess.clone());
        ByteBrainParser {
            config,
            preprocessor,
            model: ParserModel::new(),
            last_training_assignment: Vec::new(),
        }
    }

    /// Parser with the default configuration.
    pub fn default_parser() -> Self {
        Self::new(TrainConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The current model (empty before the first training cycle).
    pub fn model(&self) -> &ParserModel {
        &self.model
    }

    /// The preprocessing pipeline (shared between training and matching).
    pub fn preprocessor(&self) -> &Preprocessor {
        &self.preprocessor
    }

    /// Train on a batch of raw records, replacing any existing model.
    pub fn train(&mut self, records: &[String]) -> &ParserModel {
        let TrainOutcome {
            model,
            training_assignment,
            ..
        } = train(records, &self.config);
        self.model = model;
        self.last_training_assignment = training_assignment;
        &self.model
    }

    /// Train on a new batch and merge the result into the existing model (periodic
    /// retraining in production, §3). `similarity_threshold` controls when templates from
    /// the two models are considered the same.
    pub fn train_incremental(&mut self, records: &[String], similarity_threshold: f64) {
        let outcome = train(records, &self.config);
        if self.model.is_empty() {
            self.model = outcome.model;
        } else {
            self.model = merge_models(&self.model, &outcome.model, similarity_threshold);
        }
        self.last_training_assignment = outcome.training_assignment;
    }

    /// Match one raw log against the model. Unmatched logs are inserted as temporary
    /// templates (§3 "Online Matching") so subsequent identical logs match.
    pub fn match_log(&mut self, record: &str) -> MatchResult {
        let result = match_record(&self.model, &self.preprocessor, record);
        if result.is_matched() {
            return result;
        }
        let tokens = self.preprocessor.tokens_of(record);
        let id = self.model.insert_temporary(&tokens);
        MatchResult {
            node: Some(id),
            saturation: 1.0,
            template: self.model.nodes[id.0].template_text(),
        }
    }

    /// Match one raw log without inserting temporary templates (read-only).
    pub fn match_log_readonly(&self, record: &str) -> MatchResult {
        match_record(&self.model, &self.preprocessor, record)
    }

    /// Match a batch of raw logs (read-only) using the configured parallelism.
    pub fn match_batch(&self, records: &[String]) -> Vec<MatchResult> {
        match_batch(
            &self.model,
            &self.preprocessor,
            records,
            self.config.parallelism,
        )
    }

    /// Train on `records` and return, for every record, an opaque group id at the given
    /// saturation threshold. This is the entry point used by the grouping-accuracy
    /// experiments: records sharing a group id are considered to have the same template.
    pub fn parse_with_threshold(&mut self, records: &[String], threshold: f64) -> Vec<usize> {
        self.train(records);
        let assignments: Vec<NodeId> = if self.config.ablation.text_based_matching {
            self.match_batch(records)
                .into_iter()
                .enumerate()
                .map(|(i, r)| r.node.unwrap_or(self.last_training_assignment[i]))
                .collect()
        } else {
            // "w/ naive match": reuse the clustering assignment directly.
            self.last_training_assignment.clone()
        };
        assignments
            .into_iter()
            .map(|node| resolve_with_threshold(&self.model, node, threshold).0)
            .collect()
    }

    /// Resolve a matched node to the coarsest template meeting `threshold` and render it
    /// with consecutive wildcards merged (what the production UI shows).
    pub fn template_at_threshold(&self, node: NodeId, threshold: f64) -> String {
        let resolved = resolve_with_threshold(&self.model, node, threshold);
        presentation_template(&self.model, resolved)
    }

    /// All template texts whose saturation is at least `threshold`, most precise first.
    pub fn templates_at_threshold(&self, threshold: f64) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for &id in self.model.match_order() {
            let node = &self.model.nodes[id.0];
            if node.saturation + 1e-12 >= threshold {
                let text = presentation_template(&self.model, id);
                if seen.insert(text.clone()) {
                    out.push(text);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wakelock_records() -> Vec<String> {
        let mut records = Vec::new();
        let tags = ["View Lock", "*launch*", "WindowManager", "RILJ_ACK_WL"];
        let names = ["systemui", "android", "phone", "audioserver"];
        for i in 0..80 {
            let action = if i % 2 == 0 { "release" } else { "acquire" };
            records.push(format!(
                "{}:lock={}, flg=0x{:x}, tag=\"{}\", name={}, ws={}",
                action,
                i * 13 % 2400,
                i % 2,
                tags[i % tags.len()],
                names[i % names.len()],
                if i % 3 == 0 { "null" } else { "WS{10113}" },
            ));
        }
        records
    }

    #[test]
    fn end_to_end_fig1_scenario() {
        let records = wakelock_records();
        let mut parser = ByteBrainParser::default_parser();
        parser.train(&records);
        let release = parser.match_log_readonly(
            "release:lock=62, flg=0x0, tag=\"WindowManager\", name=android, ws=WS{1013}",
        );
        let acquire = parser.match_log_readonly(
            "acquirelock=23, flg=0x1, tag=\"View Lock\", name=systemui, ws=null",
        );
        assert!(release.is_matched());
        // The acquire record in Fig. 1 is missing the colon, so it has a different token
        // layout; it may or may not match, but it must not match the release template.
        if let (Some(r), Some(a)) = (release.node, acquire.node) {
            assert_ne!(r, a);
        }
        assert!(release.template.contains("lock"));
        // The matched template must not claim the opposite action.
        assert!(!release.template.starts_with("acquire"));
    }

    #[test]
    fn unmatched_log_becomes_temporary_template_and_then_matches() {
        let mut parser = ByteBrainParser::default_parser();
        parser.train(&wakelock_records());
        let before = parser.model().temporary_count();
        let first = parser.match_log("segfault at deadbeef ip 00007f pid 4242");
        assert!(first.is_matched());
        assert_eq!(parser.model().temporary_count(), before + 1);
        // An identical log now matches the temporary template without creating another.
        let second = parser.match_log("segfault at deadbeef ip 00007f pid 4242");
        assert_eq!(second.node, first.node);
        assert_eq!(parser.model().temporary_count(), before + 1);
    }

    #[test]
    fn threshold_controls_template_granularity() {
        let records = wakelock_records();
        let mut parser = ByteBrainParser::default_parser();
        let coarse_groups = parser.parse_with_threshold(&records, 0.05);
        let fine_groups = parser.parse_with_threshold(&records, 0.95);
        let distinct = |v: &[usize]| v.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(
            distinct(&coarse_groups) <= distinct(&fine_groups),
            "a lower threshold must never produce more groups"
        );
    }

    #[test]
    fn templates_at_threshold_are_deduplicated_and_sorted_by_precision() {
        let mut parser = ByteBrainParser::default_parser();
        parser.train(&wakelock_records());
        let templates = parser.templates_at_threshold(0.0);
        let mut unique = templates.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), templates.len());
        assert!(!templates.is_empty());
    }

    #[test]
    fn incremental_training_extends_coverage() {
        let mut parser = ByteBrainParser::default_parser();
        parser.train(&wakelock_records());
        assert!(!parser
            .match_log_readonly("GC pause of 35ms in generation 2")
            .is_matched());
        let gc_records: Vec<String> = (0..30)
            .map(|i| format!("GC pause of {}ms in generation {}", i * 3 + 1, i % 3))
            .collect();
        parser.train_incremental(&gc_records, 0.6);
        assert!(parser
            .match_log_readonly("GC pause of 7ms in generation 1")
            .is_matched());
        // Original coverage is retained.
        assert!(parser
            .match_log_readonly(
                "release:lock=100, flg=0x0, tag=\"View Lock\", name=systemui, ws=null"
            )
            .is_matched());
    }

    #[test]
    fn naive_match_variant_uses_training_assignment() {
        let records = wakelock_records();
        let config = TrainConfig::default().with_ablation(crate::config::AblationConfig {
            text_based_matching: false,
            ..crate::config::AblationConfig::full()
        });
        let mut parser = ByteBrainParser::new(config);
        let groups = parser.parse_with_threshold(&records, 0.9);
        assert_eq!(groups.len(), records.len());
    }
}
