//! Initial grouping (§4.2): cheap rules that split the training logs into independent
//! groups *before* clustering, so that (a) logs that cannot share a template are separated
//! immediately and (b) hierarchical clustering can run in parallel per group.
//!
//! Two rules are applied:
//!
//! 1. **Length** — logs with different token counts can never share a (fixed-length)
//!    template, so they are always separated.
//! 2. **Prefix** — optionally, the first `k` tokens (user-configured, 0 by default) must
//!    also agree.

use logtok::UniqueLog;
use std::collections::HashMap;

/// Key identifying one initial group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupKey {
    /// Token count of the member logs.
    pub length: usize,
    /// Combined hash of the first `k` tokens (0 when `k == 0`).
    pub prefix_hash: u64,
}

/// One initial group: the key plus the indices (into the unique-log array) of its members.
#[derive(Debug, Clone)]
pub struct InitialGroup {
    /// The grouping key.
    pub key: GroupKey,
    /// Indices into the batch's unique-log vector.
    pub members: Vec<usize>,
}

/// Partition `logs` into initial groups using token count and a `prefix_tokens`-token
/// prefix. Groups are returned in a deterministic order (sorted by key) so that training
/// is reproducible regardless of hash-map iteration order.
pub fn initial_groups(logs: &[UniqueLog], prefix_tokens: usize) -> Vec<InitialGroup> {
    let mut map: HashMap<GroupKey, Vec<usize>> = HashMap::new();
    for (idx, log) in logs.iter().enumerate() {
        let length = log.encoded.len();
        let prefix_hash = if prefix_tokens == 0 {
            0
        } else {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &token in log.encoded.encoded.iter().take(prefix_tokens) {
                h = h.rotate_left(7).wrapping_mul(0x100_0000_01b3) ^ token;
            }
            h
        };
        map.entry(GroupKey {
            length,
            prefix_hash,
        })
        .or_default()
        .push(idx);
    }
    let mut groups: Vec<InitialGroup> = map
        .into_iter()
        .map(|(key, members)| InitialGroup { key, members })
        .collect();
    groups.sort_by_key(|g| g.key);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use logtok::{EncodedLog, UniqueLog};

    fn unique(tokens: &[&str]) -> UniqueLog {
        UniqueLog {
            encoded: EncodedLog::from_tokens(tokens),
            record_indices: vec![0],
        }
    }

    #[test]
    fn groups_by_length() {
        let logs = vec![
            unique(&["a", "b"]),
            unique(&["c", "d"]),
            unique(&["a", "b", "c"]),
        ];
        let groups = initial_groups(&logs, 0);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].key.length, 2);
        assert_eq!(groups[0].members.len(), 2);
        assert_eq!(groups[1].key.length, 3);
    }

    #[test]
    fn prefix_zero_ignores_content() {
        let logs = vec![unique(&["start", "x"]), unique(&["stop", "y"])];
        let groups = initial_groups(&logs, 0);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn prefix_one_separates_different_first_tokens() {
        let logs = vec![
            unique(&["start", "x"]),
            unique(&["start", "y"]),
            unique(&["stop", "x"]),
        ];
        let groups = initial_groups(&logs, 1);
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.members.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn prefix_longer_than_log_uses_available_tokens() {
        let logs = vec![unique(&["a"]), unique(&["a"]), unique(&["b"])];
        let groups = initial_groups(&logs, 5);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn empty_input_gives_no_groups() {
        assert!(initial_groups(&[], 0).is_empty());
    }

    #[test]
    fn order_is_deterministic() {
        let logs = vec![
            unique(&["a", "b", "c"]),
            unique(&["x"]),
            unique(&["p", "q"]),
        ];
        let a = initial_groups(&logs, 0);
        let b = initial_groups(&logs, 0);
        let keys_a: Vec<GroupKey> = a.iter().map(|g| g.key).collect();
        let keys_b: Vec<GroupKey> = b.iter().map(|g| g.key).collect();
        assert_eq!(keys_a, keys_b);
        assert_eq!(keys_a[0].length, 1);
        assert_eq!(keys_a[2].length, 3);
    }

    #[test]
    fn every_log_lands_in_exactly_one_group() {
        let logs: Vec<UniqueLog> = (0..50)
            .map(|i| {
                let tokens: Vec<String> = (0..(i % 5 + 1)).map(|j| format!("t{j}")).collect();
                let refs: Vec<&str> = tokens.iter().map(|s| s.as_str()).collect();
                unique(&refs)
            })
            .collect();
        let groups = initial_groups(&logs, 0);
        let mut seen = vec![false; logs.len()];
        for g in &groups {
            for &m in &g.members {
                assert!(!seen[m], "log {m} appears in two groups");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
