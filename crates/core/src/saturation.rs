//! The saturation score (§4.5, Eq. 3).
//!
//! Saturation measures how completely the token positions of a group of logs have been
//! resolved into constants or variables; it controls when hierarchical clustering stops
//! refining a node and, at query time, which ancestor template satisfies a user-requested
//! precision threshold.
//!
//! The exact formula in the paper is ambiguous in one detail (the `−1` in the variability
//! scale factor); the interpretation implemented here — documented in `DESIGN.md` §4 — is
//! the one that reproduces the worked example of Fig. 5:
//!
//! * `f_c = m_c / m` — fraction of positions whose token is identical in every log.
//! * For every unresolved position `i`, `f_v^(i) = ln(n_u) / ln(n)` clamped to `[0, 1]`,
//!   where `n_u` is the number of distinct tokens at `i` and `n` the number of distinct
//!   logs; `f_v = min_i f_v^(i)` so that the most *structural* unresolved position (the
//!   one with the fewest distinct values) exerts the strongest pressure to keep splitting.
//! * `p_c = 1 / (2^(m − m_c) − 1)` — confidence that shrinks as more positions remain
//!   unresolved.
//! * `s = (f_v · p_c + (1 − p_c)) · f_c`.
//!
//! Fully-resolved special cases score exactly 1: a group with at most one distinct log, a
//! group whose positions are all constant, and a group whose single unresolved position is
//! completely distinct (a definite variable).

use crate::config::AblationConfig;
use crate::distance::ClusterProfile;

/// Classification of the positions of a cluster profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PositionBreakdown {
    /// Total number of positions (`m`).
    pub total: usize,
    /// Positions with exactly one distinct token (`m_c`).
    pub constants: usize,
    /// Indices of unresolved positions (more than one distinct token).
    pub unresolved: Vec<usize>,
    /// Unresolved positions whose distinct-token count equals the number of distinct logs
    /// (i.e. every log has a different value there — a definite variable).
    pub completely_distinct: Vec<usize>,
}

/// Classify positions from a cluster profile.
pub fn breakdown(profile: &ClusterProfile) -> PositionBreakdown {
    let m = profile.num_positions();
    let distinct_logs = profile.unique_count();
    let mut constants = 0usize;
    let mut unresolved = Vec::new();
    let mut completely_distinct = Vec::new();
    for i in 0..m {
        let n_u = profile.distinct_at(i);
        if n_u <= 1 {
            constants += 1;
        } else {
            unresolved.push(i);
            if n_u >= distinct_logs && distinct_logs > 1 {
                completely_distinct.push(i);
            }
        }
    }
    PositionBreakdown {
        total: m,
        constants,
        unresolved,
        completely_distinct,
    }
}

/// Compute the saturation score of a cluster profile under the given ablation switches.
pub fn saturation(profile: &ClusterProfile, ablation: &AblationConfig) -> f64 {
    let m = profile.num_positions();
    let n = profile.unique_count();
    // Degenerate groups are fully resolved by definition.
    if m == 0 || n <= 1 {
        return 1.0;
    }
    let parts = breakdown(profile);
    let f_c = parts.constants as f64 / parts.total as f64;
    if parts.unresolved.is_empty() {
        return 1.0;
    }
    // A single unresolved position that is completely distinct is a definite variable:
    // splitting on it can never produce a meaningful template (§4.7, early-stop rule 2/3;
    // Fig. 5 Set 1 is scored 1.0 for this reason).
    if parts.unresolved.len() == 1 && parts.completely_distinct.len() == 1 {
        return 1.0;
    }
    if !ablation.variable_in_saturation {
        // "w/o variable in saturation": s = f_c.
        return f_c;
    }
    // Variability factor: minimum over unresolved positions of ln(n_u)/ln(n).
    let ln_n = (n as f64).ln().max(f64::MIN_POSITIVE);
    let f_v = parts
        .unresolved
        .iter()
        .map(|&i| {
            let n_u = profile.distinct_at(i) as f64;
            (n_u.ln() / ln_n).clamp(0.0, 1.0)
        })
        .fold(f64::INFINITY, f64::min);
    let f_v = if f_v.is_finite() { f_v } else { 1.0 };

    if !ablation.confidence_factor {
        // "w/o confidence factor": s = f_v · f_c.
        return (f_v * f_c).clamp(0.0, 1.0);
    }
    // Confidence factor p_c = 1 / (2^(m − m_c) − 1), clamped to [0, 1].
    let exponent = (parts.total - parts.constants).min(63) as u32;
    let denominator = (1u64 << exponent).saturating_sub(1).max(1) as f64;
    let p_c = (1.0 / denominator).clamp(0.0, 1.0);
    ((f_v * p_c + (1.0 - p_c)) * f_c).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logtok::EncodedLog;

    fn profile(logs: &[&[&str]]) -> ClusterProfile {
        let encoded: Vec<EncodedLog> = logs.iter().map(|t| EncodedLog::from_tokens(t)).collect();
        ClusterProfile::from_logs(logs[0].len(), encoded.iter())
    }

    fn full() -> AblationConfig {
        AblationConfig::full()
    }

    #[test]
    fn fig5_set1_is_fully_saturated() {
        // "UserService createUser token=<value> success": only the token value varies and
        // it is different in every log → definite variable → saturation 1.
        let p = profile(&[
            &["UserService", "createUser", "token", "abc123", "success"],
            &["UserService", "createUser", "token", "xyz789", "success"],
            &["UserService", "createUser", "token", "def456", "success"],
        ]);
        assert!((saturation(&p, &full()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig5_set2_root_is_poorly_saturated() {
        // Action, token and status all vary → far from saturated (paper illustrates 0.4).
        let p = profile(&[
            &["UserService", "createUser", "token", "abc123", "success"],
            &["UserService", "deleteUser", "token", "xyz789", "failed"],
            &["UserService", "queryUser", "token", "def456", "success"],
        ]);
        let s = saturation(&p, &full());
        assert!(s > 0.2 && s < 0.5, "expected ≈0.4, got {s}");
    }

    #[test]
    fn fig5_subset_46_saturation() {
        // Logs 4 and 6 share status "success": constants are UserService, token, success
        // → f_c = 0.6; both unresolved positions are completely distinct → s = f_c = 0.6.
        let p = profile(&[
            &["UserService", "createUser", "token", "abc123", "success"],
            &["UserService", "queryUser", "token", "def456", "success"],
        ]);
        let s = saturation(&p, &full());
        assert!((s - 0.6).abs() < 0.05, "expected ≈0.6, got {s}");
    }

    #[test]
    fn single_log_is_fully_saturated() {
        let p = profile(&[&["only", "one", "log"]]);
        assert_eq!(saturation(&p, &full()), 1.0);
    }

    #[test]
    fn all_constant_positions_fully_saturated() {
        let p = profile(&[&["heartbeat", "ok"], &["heartbeat", "ok"]]);
        assert_eq!(saturation(&p, &full()), 1.0);
    }

    #[test]
    fn saturation_increases_when_structure_is_resolved() {
        // Parent mixes two actions; each child (single action) must score higher.
        let parent = profile(&[
            &["svc", "start", "a"],
            &["svc", "start", "b"],
            &["svc", "stop", "a"],
            &["svc", "stop", "b"],
        ]);
        let child_start = profile(&[&["svc", "start", "a"], &["svc", "start", "b"]]);
        let child_stop = profile(&[&["svc", "stop", "a"], &["svc", "stop", "b"]]);
        let sp = saturation(&parent, &full());
        assert!(saturation(&child_start, &full()) > sp);
        assert!(saturation(&child_stop, &full()) > sp);
    }

    #[test]
    fn score_is_always_in_unit_interval() {
        let cases: Vec<Vec<&[&str]>> = vec![
            vec![&["a"], &["b"], &["c"]],
            vec![&["x", "y", "z"], &["x", "q", "z"], &["x", "y", "w"]],
            vec![&["1", "2"], &["1", "2"], &["3", "4"]],
        ];
        for logs in cases {
            let p = profile(&logs);
            let s = saturation(&p, &full());
            assert!((0.0..=1.0).contains(&s), "saturation out of range: {s}");
        }
    }

    #[test]
    fn ablation_without_variable_reduces_to_constant_fraction() {
        let p = profile(&[&["svc", "start", "a"], &["svc", "stop", "b"]]);
        let config = AblationConfig {
            variable_in_saturation: false,
            ..full()
        };
        // constants: "svc" only → f_c = 1/3.
        assert!((saturation(&p, &config) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ablation_without_confidence_factor() {
        let p = profile(&[
            &["svc", "start", "a", "x"],
            &["svc", "stop", "b", "x"],
            &["svc", "start", "c", "x"],
        ]);
        let without = AblationConfig {
            confidence_factor: false,
            ..full()
        };
        let s_without = saturation(&p, &without);
        let s_with = saturation(&p, &full());
        // Both are valid scores; the confidence factor softens the variability penalty, so
        // the full formula is never smaller.
        assert!(s_with >= s_without - 1e-12);
    }

    #[test]
    fn breakdown_identifies_position_classes() {
        let p = profile(&[
            &["op", "read", "id1"],
            &["op", "write", "id2"],
            &["op", "read", "id3"],
        ]);
        let b = breakdown(&p);
        assert_eq!(b.total, 3);
        assert_eq!(b.constants, 1);
        assert_eq!(b.unresolved, vec![1, 2]);
        assert_eq!(b.completely_distinct, vec![2]);
    }
}
