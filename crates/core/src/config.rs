//! Training and ablation configuration.

use logtok::PreprocessConfig;
use serde::{Deserialize, Serialize};

/// Switches for the techniques evaluated in the ablation study (§5.4, Fig. 8 and Fig. 9).
///
/// Every field defaults to `true` (the full ByteBrain configuration); the ablation
/// experiments disable one technique at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Weight positions by `1/(n_i − 1)` in the positional similarity distance (Eq. 2).
    /// Disabled → every position weight is 1 ("w/o position importance").
    pub position_importance: bool,
    /// Include the variability factor of unresolved positions in the saturation score
    /// (Eq. 3). Disabled → `s = f_c` ("w/o variable in saturation").
    pub variable_in_saturation: bool,
    /// Include the confidence factor `p_c` in the saturation score. Disabled →
    /// `s = f_v · f_c` ("w/o confidence factor").
    pub confidence_factor: bool,
    /// Select new cluster centroids K-Means++-style (farthest log). Disabled → random
    /// centroid selection ("random centroid selection").
    pub kmeanspp_centroids: bool,
    /// Only keep a split when every child's saturation improves on the parent
    /// ("w/o ensure saturation increase" splits unconditionally into two clusters).
    pub ensure_saturation_increase: bool,
    /// Randomly break ties when a log is equidistant from several clusters
    /// ("w/o balanced group" always picks the first cluster).
    pub balanced_grouping: bool,
    /// Stop clustering early for trivially-resolved nodes (§4.7).
    pub early_stopping: bool,
    /// Collapse duplicate logs before clustering (§4.1.3). Disabling this also disables
    /// the optimisations that depend on it, mirroring "w/o deduplication & related techs".
    pub deduplication: bool,
    /// Assign templates to training logs with the online text matcher (§4.8). Disabled →
    /// use the clustering assignment directly ("w/ naive match").
    pub text_based_matching: bool,
    /// Use hash encoding for tokens. Disabled → ordinal (dictionary) encoding, the
    /// "ordinal encoding" ablation variant of Fig. 9 / Fig. 10.
    pub hash_encoding: bool,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            position_importance: true,
            variable_in_saturation: true,
            confidence_factor: true,
            kmeanspp_centroids: true,
            ensure_saturation_increase: true,
            balanced_grouping: true,
            early_stopping: true,
            deduplication: true,
            text_based_matching: true,
            hash_encoding: true,
        }
    }
}

impl AblationConfig {
    /// The full configuration (all techniques enabled).
    pub fn full() -> Self {
        Self::default()
    }

    /// Named ablation variants exactly as they appear in Fig. 8 / Fig. 9, mapping the
    /// variant label to its configuration.
    pub fn named_variants() -> Vec<(&'static str, AblationConfig)> {
        let full = AblationConfig::full();
        vec![
            ("ByteBrain", full),
            (
                "w/ naive match",
                AblationConfig {
                    text_based_matching: false,
                    ..full
                },
            ),
            (
                "w/o variable in saturation",
                AblationConfig {
                    variable_in_saturation: false,
                    ..full
                },
            ),
            (
                "w/o position importance",
                AblationConfig {
                    position_importance: false,
                    ..full
                },
            ),
            (
                "w/o confidence factor",
                AblationConfig {
                    confidence_factor: false,
                    ..full
                },
            ),
            (
                "random centroid selection",
                AblationConfig {
                    kmeanspp_centroids: false,
                    ..full
                },
            ),
            (
                "w/o ensure saturation increase",
                AblationConfig {
                    ensure_saturation_increase: false,
                    ..full
                },
            ),
            (
                "w/o balanced group",
                AblationConfig {
                    balanced_grouping: false,
                    ..full
                },
            ),
            (
                "w/o early stopping",
                AblationConfig {
                    early_stopping: false,
                    ..full
                },
            ),
            (
                "w/o deduplication&related techs",
                AblationConfig {
                    deduplication: false,
                    balanced_grouping: false,
                    early_stopping: false,
                    ..full
                },
            ),
            (
                "ordinal encoding",
                AblationConfig {
                    hash_encoding: false,
                    ..full
                },
            ),
        ]
    }
}

/// Full training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Preprocessing configuration (tokenizer, masking, deduplication).
    pub preprocess: PreprocessConfig,
    /// Number of leading tokens used by prefix-based initial grouping (§4.2). The paper's
    /// default is 0 (group by length only).
    pub prefix_tokens: usize,
    /// Hard cap on clustering-tree depth (a safety bound; saturation normally terminates
    /// the recursion much earlier).
    pub max_depth: usize,
    /// Maximum refinement iterations in one single-clustering process (§4.4).
    pub max_cluster_iters: usize,
    /// Saturation at or above which a node is considered fully resolved.
    pub saturation_target: f64,
    /// Random seed (centroid selection and balanced-grouping tie breaks).
    pub seed: u64,
    /// Number of worker threads used for training and matching (the paper limits
    /// production deployments to 1–5 cores; Fig. 12 sweeps this value).
    pub parallelism: usize,
    /// Random sampling cap: when a training batch exceeds this many records, a uniform
    /// sample of this size is used (the paper's OOM guard for exceptionally large topics).
    pub max_training_records: usize,
    /// Technique switches for the ablation study.
    pub ablation: AblationConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            preprocess: PreprocessConfig::default(),
            prefix_tokens: 0,
            max_depth: 24,
            max_cluster_iters: 8,
            saturation_target: 1.0,
            seed: 0x5EED,
            parallelism: 1,
            max_training_records: 2_000_000,
            ablation: AblationConfig::default(),
        }
    }
}

impl TrainConfig {
    /// Configuration used by the efficiency experiments: identical algorithmic behaviour,
    /// `parallelism` worker threads.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Replace the ablation switches.
    pub fn with_ablation(mut self, ablation: AblationConfig) -> Self {
        self.ablation = ablation;
        // Deduplication is implemented in the preprocessing pipeline.
        self.preprocess.deduplicate = ablation.deduplication;
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_every_technique() {
        let a = AblationConfig::default();
        assert!(a.position_importance);
        assert!(a.deduplication);
        assert!(a.text_based_matching);
        assert!(a.hash_encoding);
    }

    #[test]
    fn named_variants_cover_the_paper_figures() {
        let variants = AblationConfig::named_variants();
        let names: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
        for expected in [
            "ByteBrain",
            "w/ naive match",
            "w/o variable in saturation",
            "w/o position importance",
            "w/o confidence factor",
            "random centroid selection",
            "w/o ensure saturation increase",
            "w/o balanced group",
            "w/o early stopping",
            "w/o deduplication&related techs",
            "ordinal encoding",
        ] {
            assert!(names.contains(&expected), "missing variant {expected}");
        }
        // The first variant is the full configuration.
        assert_eq!(variants[0].1, AblationConfig::full());
    }

    #[test]
    fn dedup_variant_disables_dependent_techniques() {
        let variants = AblationConfig::named_variants();
        let (_, config) = variants
            .iter()
            .find(|(n, _)| *n == "w/o deduplication&related techs")
            .unwrap();
        assert!(!config.deduplication);
        assert!(!config.balanced_grouping);
        assert!(!config.early_stopping);
    }

    #[test]
    fn with_ablation_propagates_dedup_to_preprocessing() {
        let config = TrainConfig::default().with_ablation(AblationConfig {
            deduplication: false,
            ..AblationConfig::full()
        });
        assert!(!config.preprocess.deduplicate);
    }

    #[test]
    fn with_parallelism_floors_at_one() {
        assert_eq!(TrainConfig::default().with_parallelism(0).parallelism, 1);
        assert_eq!(TrainConfig::default().with_parallelism(8).parallelism, 8);
    }
}
