//! `bytebrain` — the core ByteBrain-LogParser algorithm (§3–§4 of the paper).
//!
//! The parser works in two phases:
//!
//! 1. **Offline training** ([`train`]): raw logs are preprocessed (masking, tokenization,
//!    deduplication, hash encoding — provided by the `logtok` crate), grouped by token
//!    count and prefix ([`grouping`]), and then hierarchically clustered into a tree of
//!    templates ([`cluster`], [`tree`]). Each tree node carries a *saturation score*
//!    ([`saturation`]) that strictly increases with depth and quantifies how precisely the
//!    node's logs have been resolved into constants and variables.
//! 2. **Online matching** ([`matcher`]): incoming logs are matched position-by-position
//!    against the stored template texts in descending saturation order; unmatched logs
//!    become temporary single-log templates that the next training cycle absorbs.
//!
//! Query-time precision control ([`query`]) walks from the matched (most precise) template
//! up the tree to the coarsest ancestor whose saturation still meets a user threshold, so
//! precision can be changed per query without reparsing any data.
//!
//! # Quick start
//!
//! ```
//! use bytebrain::{ByteBrainParser, TrainConfig};
//!
//! let logs = vec![
//!     "Accepted password for alice from 10.0.0.5 port 22".to_string(),
//!     "Accepted password for bob from 10.0.0.9 port 22".to_string(),
//!     "Connection closed by 10.0.0.5".to_string(),
//! ];
//! let mut parser = ByteBrainParser::new(TrainConfig::default());
//! parser.train(&logs);
//! let result = parser.match_log("Accepted password for carol from 10.0.0.7 port 22");
//! assert!(result.template.contains("Accepted password for"));
//! ```

pub mod automaton;
pub mod cluster;
pub mod config;
pub mod distance;
pub mod grouping;
pub mod incremental;
pub mod matcher;
pub mod merge;
pub mod model;
pub mod parallel;
pub mod parser;
pub mod query;
pub mod saturation;
pub mod train;
pub mod tree;

pub use automaton::{CompiledMatcher, DfaEncoding, MatchCache, MatchEngine};
pub use config::{AblationConfig, TrainConfig};
pub use incremental::{
    apply_delta, train_delta, DeltaParent, DriftConfig, DriftDecision, DriftDetector, ModelDelta,
};
pub use matcher::{MatchResult, Matcher};
pub use model::ParserModel;
pub use parser::ByteBrainParser;
pub use query::ast::{Aggregate, Predicate, Query};
pub use query::plan::{CompiledPredicate, PlanError, PlanOutput, QueryPlan, RecordView};
pub use query::{
    clamp_threshold, merge_consecutive_wildcards, presentation_template, resolve_with_threshold,
    LadderRung, SaturationLadder, DEFAULT_THRESHOLD,
};
pub use tree::{NodeId, TemplateToken, TreeNode};
