//! Online matching (§4.8): match incoming logs against stored template texts.
//!
//! Templates are tried in descending saturation order (deepest/most precise first); a
//! template matches when the log has the same token count and every position equals the
//! template token or the template holds a wildcard. This avoids recomputing positional
//! similarity distances and traversing the tree online, which is what keeps the model
//! small (no per-node token statistics) and matching cheap.

use crate::automaton::CompiledMatcher;
use crate::model::ParserModel;
use crate::parallel::run_parallel;
use crate::tree::NodeId;
use logtok::{Preprocessor, TokenScratch, TokenView};
use serde::{Deserialize, Serialize};

/// The matching engine interface: anything that can assign a preprocessed
/// token stream to a template. Implemented by [`ParserModel`] (linear walk
/// over `match_order` — the reference) and
/// [`CompiledMatcher`] (the compiled
/// automaton hot path). The service layer's pools and ingestors route every
/// record through this trait, so engines are interchangeable per topic.
pub trait Matcher {
    /// Assign `view` to the most precise matching template, or `None`.
    fn match_view(&self, view: &TokenView<'_>) -> Option<NodeId>;

    /// Owned-token variant used by maintenance re-matching.
    fn match_tokens(&self, tokens: &[String]) -> Option<NodeId>;
}

impl Matcher for ParserModel {
    fn match_view(&self, view: &TokenView<'_>) -> Option<NodeId> {
        match_view(self, view)
    }

    fn match_tokens(&self, tokens: &[String]) -> Option<NodeId> {
        match_tokens(self, tokens)
    }
}

/// The result of matching one log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchResult {
    /// Matched node (most precise template), `None` when no template matched.
    pub node: Option<NodeId>,
    /// Saturation of the matched node (0 when unmatched).
    pub saturation: f64,
    /// Rendered template text (the raw log itself when unmatched).
    pub template: String,
}

impl MatchResult {
    /// True when a template matched.
    pub fn is_matched(&self) -> bool {
        self.node.is_some()
    }
}

/// Match a tokenized log against the model; returns the first (most precise) matching
/// template id.
pub fn match_tokens(model: &ParserModel, tokens: &[String]) -> Option<NodeId> {
    for &id in model.match_order() {
        let node = &model.nodes[id.0];
        if node.matches_tokens(tokens) {
            return Some(id);
        }
    }
    None
}

/// Borrow-based match entry point (§4.8, zero-copy fast path): match a
/// [`TokenView`] produced by [`Preprocessor::token_view`] without allocating owned
/// token strings or a rendered template. Returns the first (most precise) matching
/// template id. This is what the sharded streaming ingestion engine calls per record.
pub fn match_view(model: &ParserModel, view: &TokenView<'_>) -> Option<NodeId> {
    for &id in model.match_order() {
        let node = &model.nodes[id.0];
        if node.matches_view(view) {
            return Some(id);
        }
    }
    None
}

/// Match a raw record through caller-provided scratch buffers: the zero-copy
/// equivalent of [`match_record`]. Only the rendered template of the *result*
/// allocates; preprocessing and matching reuse `scratch`.
pub fn match_record_with_scratch(
    model: &ParserModel,
    preprocessor: &Preprocessor,
    record: &str,
    scratch: &mut TokenScratch,
) -> MatchResult {
    let view = preprocessor.token_view(record, scratch);
    match match_view(model, &view) {
        Some(id) => {
            let node = &model.nodes[id.0];
            MatchResult {
                node: Some(id),
                saturation: node.saturation,
                template: node.template_text(),
            }
        }
        None => MatchResult {
            node: None,
            saturation: 0.0,
            template: record.to_string(),
        },
    }
}

/// Match a raw log record (running the same preprocessing pipeline used for training).
pub fn match_record(model: &ParserModel, preprocessor: &Preprocessor, record: &str) -> MatchResult {
    let mut scratch = TokenScratch::new();
    match_record_with_scratch(model, preprocessor, record, &mut scratch)
}

/// Match a batch of raw records, optionally across `workers` threads (§3 "Parallel": the
/// online phase parallelises template matching across logs).
pub fn match_batch(
    model: &ParserModel,
    preprocessor: &Preprocessor,
    records: &[String],
    workers: usize,
) -> Vec<MatchResult> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<TokenScratch> =
            std::cell::RefCell::new(TokenScratch::new());
    }
    let indexed: Vec<(usize, &String)> = records.iter().enumerate().collect();
    let mut results = run_parallel(workers, indexed, |(idx, record)| {
        SCRATCH.with(|scratch| {
            let result =
                match_record_with_scratch(model, preprocessor, record, &mut scratch.borrow_mut());
            (idx, result)
        })
    });
    results.sort_by_key(|(idx, _)| *idx);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Engine-dispatching view match: the compiled automaton when a snapshot is
/// supplied, the linear tree walk otherwise. Both return the same id for the
/// same view (the differential suite's core invariant).
pub fn match_view_with(
    model: &ParserModel,
    compiled: Option<&CompiledMatcher>,
    view: &TokenView<'_>,
) -> Option<NodeId> {
    match compiled {
        Some(compiled) => compiled.match_view(view),
        None => match_view(model, view),
    }
}

/// Lean engine-dispatching batch matcher: like [`match_batch`] but returns
/// `(node, saturation)` pairs without rendering template texts — the service
/// layer's ingest and maintenance re-match paths only need the assignment.
pub fn match_ids_batch<S: AsRef<str> + Sync>(
    model: &ParserModel,
    compiled: Option<&CompiledMatcher>,
    preprocessor: &Preprocessor,
    records: &[S],
    workers: usize,
) -> Vec<(Option<NodeId>, f64)> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<TokenScratch> =
            std::cell::RefCell::new(TokenScratch::new());
    }
    let indexed: Vec<(usize, &str)> = records
        .iter()
        .map(|record| record.as_ref())
        .enumerate()
        .collect();
    let mut results = run_parallel(workers, indexed, |(idx, record)| {
        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            let view = preprocessor.token_view(record, &mut scratch);
            let node = match_view_with(model, compiled, &view);
            let saturation = node.map(|id| model.nodes[id.0].saturation).unwrap_or(0.0);
            (idx, (node, saturation))
        })
    });
    results.sort_by_key(|(idx, _)| *idx);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::train::train;

    fn trained_model() -> (ParserModel, Preprocessor) {
        let mut records = Vec::new();
        for i in 0..40 {
            records.push(format!(
                "Accepted password for user{} from 10.0.0.{} port 22",
                i % 5,
                i % 9
            ));
            records.push(format!(
                "Failed password for user{} from 10.0.0.{} port 22",
                i % 5,
                i % 9
            ));
            records.push(format!("Connection closed by 10.0.0.{}", i % 9));
        }
        let config = TrainConfig::default();
        let outcome = train(&records, &config);
        (outcome.model, Preprocessor::new(config.preprocess.clone()))
    }

    #[test]
    fn known_patterns_match_trained_templates() {
        let (model, pre) = trained_model();
        let result = match_record(
            &model,
            &pre,
            "Accepted password for user99 from 10.0.0.77 port 22",
        );
        assert!(result.is_matched());
        assert!(result.template.contains("Accepted password for"));
        assert!(result.saturation > 0.5);
    }

    #[test]
    fn unknown_pattern_is_unmatched() {
        let (model, pre) = trained_model();
        let result = match_record(&model, &pre, "kernel panic: attempted to kill init");
        assert!(!result.is_matched());
        assert_eq!(result.template, "kernel panic: attempted to kill init");
        assert_eq!(result.saturation, 0.0);
    }

    #[test]
    fn most_precise_template_wins() {
        let (model, pre) = trained_model();
        let result = match_record(
            &model,
            &pre,
            "Failed password for user1 from 10.0.0.3 port 22",
        );
        let node = model.node(result.node.unwrap()).unwrap();
        // The matched node must distinguish Accepted from Failed (i.e. not be a coarse
        // ancestor with a wildcard at the first position).
        assert!(node.template_text().starts_with("Failed"));
    }

    #[test]
    fn batch_matching_preserves_order_and_agrees_with_single() {
        let (model, pre) = trained_model();
        let records: Vec<String> = vec![
            "Connection closed by 10.0.0.3".into(),
            "Accepted password for userX from 10.0.0.1 port 22".into(),
            "totally novel log statement".into(),
        ];
        let batch = match_batch(&model, &pre, &records, 3);
        assert_eq!(batch.len(), 3);
        for (record, result) in records.iter().zip(&batch) {
            let single = match_record(&model, &pre, record);
            assert_eq!(single.node, result.node);
        }
    }

    #[test]
    fn empty_model_matches_nothing() {
        let model = ParserModel::new();
        let pre = Preprocessor::default_pipeline();
        let result = match_record(&model, &pre, "anything at all");
        assert!(!result.is_matched());
    }

    #[test]
    fn training_assignment_agrees_with_online_matching_most_of_the_time() {
        // §5.4.1: text-based matching does not compromise accuracy. On the training data
        // the online matcher should group logs (almost) identically to the clustering
        // assignment.
        let mut records = Vec::new();
        for i in 0..60 {
            records.push(format!("block blk_{} replicated to node{}", i, i % 4));
            records.push(format!("block blk_{} deleted from node{}", i, i % 4));
        }
        let config = TrainConfig::default();
        let outcome = train(&records, &config);
        let pre = Preprocessor::new(config.preprocess.clone());
        let mut agree = 0usize;
        for (record, assigned) in records.iter().zip(&outcome.training_assignment) {
            let matched = match_record(&outcome.model, &pre, record);
            if matched.node == Some(*assigned) {
                agree += 1;
            }
        }
        let ratio = agree as f64 / records.len() as f64;
        assert!(
            ratio > 0.8,
            "online matching diverged from training assignment: {ratio}"
        );
    }
}
