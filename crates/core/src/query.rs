//! Query-time precision control (§3 "Query") and the wildcard-merging presentation
//! optimisation (§7).
//!
//! Online matching always records the *most precise* template id for every log. At query
//! time the user supplies a saturation threshold; the system walks from the recorded node
//! up through its ancestors and returns the **coarsest** ancestor whose saturation still
//! meets the threshold. Precision can therefore be changed per query — the interactive
//! slider in the production UI — without reparsing logs or storing templates redundantly.

use crate::model::ParserModel;
use crate::tree::NodeId;

/// Resolve `node` to the coarsest ancestor whose saturation is at least `threshold`.
///
/// When even the matched node itself is below the threshold (possible for coarse matches
/// or thresholds near 1), the node itself is returned — precision can only be reduced, not
/// invented.
pub fn resolve_with_threshold(model: &ParserModel, node: NodeId, threshold: f64) -> NodeId {
    let mut chosen = node;
    let mut current = node;
    while let Some(parent) = model.nodes[current.0].parent {
        if model.nodes[parent.0].saturation >= threshold {
            chosen = parent;
            current = parent;
        } else {
            break;
        }
    }
    chosen
}

/// Resolve a batch of matched node ids against a threshold (parallel query processing is
/// handled by the service layer; the per-id walk is already O(depth)).
pub fn resolve_batch(model: &ParserModel, nodes: &[NodeId], threshold: f64) -> Vec<NodeId> {
    nodes
        .iter()
        .map(|&n| resolve_with_threshold(model, n, threshold))
        .collect()
}

/// Template text for a node after applying the query-result optimisation of §7: runs of
/// consecutive wildcards collapse into a single `*`, so `users * * *` and `users *`
/// present identically even though the underlying fixed-length templates differ.
pub fn presentation_template(model: &ParserModel, node: NodeId) -> String {
    merge_consecutive_wildcards(&model.nodes[node.0].template_text())
}

/// Collapse runs of consecutive `*` tokens in a space-separated template string.
pub fn merge_consecutive_wildcards(template: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    let mut previous_was_wildcard = false;
    for token in template.split_whitespace() {
        let is_wildcard = token == "*";
        if is_wildcard && previous_was_wildcard {
            continue;
        }
        out.push(token);
        previous_was_wildcard = is_wildcard;
    }
    out.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{TemplateToken, TreeNode};

    /// Build a linear chain root → mid → leaf with increasing saturation.
    fn chain_model() -> (ParserModel, NodeId, NodeId, NodeId) {
        let mut model = ParserModel::new();
        let make = |sat: f64, depth: usize, text: &[&str]| TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: text
                .iter()
                .map(|t| {
                    if *t == "*" {
                        TemplateToken::Wildcard
                    } else {
                        TemplateToken::Const(t.to_string())
                    }
                })
                .collect(),
            saturation: sat,
            depth,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        };
        let root = model.push_node(make(0.3, 0, &["*", "lock", "*", "*"]));
        let mid = model.push_node(make(0.7, 1, &["release", "lock", "*", "*"]));
        let leaf = model.push_node(make(0.95, 2, &["release", "lock", "*", "null"]));
        model.add_root(root);
        model.attach_child(root, mid);
        model.attach_child(mid, leaf);
        model.rebuild_match_order();
        (model, root, mid, leaf)
    }

    #[test]
    fn low_threshold_selects_the_root() {
        let (model, root, _, leaf) = chain_model();
        assert_eq!(resolve_with_threshold(&model, leaf, 0.1), root);
    }

    #[test]
    fn medium_threshold_selects_the_middle_node() {
        let (model, _, mid, leaf) = chain_model();
        assert_eq!(resolve_with_threshold(&model, leaf, 0.6), mid);
    }

    #[test]
    fn high_threshold_keeps_the_leaf() {
        let (model, _, _, leaf) = chain_model();
        assert_eq!(resolve_with_threshold(&model, leaf, 0.9), leaf);
        // Threshold above the leaf's own saturation still returns the leaf.
        assert_eq!(resolve_with_threshold(&model, leaf, 0.99), leaf);
    }

    #[test]
    fn resolving_from_an_interior_node_walks_up_only() {
        let (model, root, mid, _) = chain_model();
        assert_eq!(resolve_with_threshold(&model, mid, 0.2), root);
        assert_eq!(resolve_with_threshold(&model, mid, 0.65), mid);
    }

    #[test]
    fn batch_resolution_matches_individual_resolution() {
        let (model, _, mid, leaf) = chain_model();
        let out = resolve_batch(&model, &[leaf, mid, leaf], 0.6);
        assert_eq!(out, vec![mid, mid, mid]);
    }

    #[test]
    fn wildcard_merging_examples_from_the_paper() {
        // print(f"users={users}") with 1, 2 and 3 elements → identical presentation.
        assert_eq!(merge_consecutive_wildcards("users *"), "users *");
        assert_eq!(merge_consecutive_wildcards("users * *"), "users *");
        assert_eq!(merge_consecutive_wildcards("users * * *"), "users *");
        // Interior runs collapse too, separated constants keep their own wildcard.
        assert_eq!(
            merge_consecutive_wildcards("copy * * to * done"),
            "copy * to * done"
        );
    }

    #[test]
    fn presentation_template_uses_merged_wildcards() {
        let (model, root, _, _) = chain_model();
        assert_eq!(presentation_template(&model, root), "* lock *");
    }

    #[test]
    fn merging_is_idempotent() {
        let once = merge_consecutive_wildcards("a * * b * * * c");
        let twice = merge_consecutive_wildcards(&once);
        assert_eq!(once, twice);
        assert_eq!(once, "a * b * c");
    }
}
