//! Composable query AST (§5 query surface).
//!
//! A [`Query`] is a declarative description of a template-level question:
//! an optional boolean [`Predicate`] over records, a saturation threshold
//! that picks the presentation precision, and one [`Aggregate`] combinator
//! deciding the output shape. The AST is deliberately small — every public
//! query entry point in the service layer is a thin constructor over it —
//! and it carries no execution state: call [`Query::plan`] to normalize it
//! into a [`QueryPlan`] that executors run.
//!
//! Predicates compose with `and` / `or` / `not` and come in two flavours
//! the planner treats differently:
//!
//! * **node-level** — [`Predicate::TemplateMatches`] inspects only the
//!   resolved presentation template text, so it is evaluated once per live
//!   node (never per record);
//! * **record-level** — variable-value filters and time-window bounds
//!   inspect individual records; the planner pushes the required conjuncts
//!   down to storage so whole segments can be skipped via column summaries
//!   before any postings are touched.

use crate::query::plan::{PlanError, QueryPlan};
use crate::query::DEFAULT_THRESHOLD;

/// A boolean predicate over one stored record.
///
/// `TemplateMatches` sees the record through its *resolved* presentation
/// template (coarsened to the query threshold); variable filters see the
/// concrete tokens sitting at the wildcard positions of the record's
/// *assigned* (most precise) template; time windows see the record's
/// sequence number.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// The resolved presentation template text matches this `logregex`
    /// pattern (unanchored search semantics).
    TemplateMatches(String),
    /// Some variable token of the record equals this value exactly.
    VariableEquals(String),
    /// Some variable token of the record contains this value as a substring.
    VariableContains(String),
    /// The record's sequence number lies in `[start, end)`.
    TimeWindow {
        /// Inclusive lower sequence bound.
        start: u64,
        /// Exclusive upper sequence bound.
        end: u64,
    },
    /// Every child predicate holds.
    And(Vec<Predicate>),
    /// At least one child predicate holds.
    Or(Vec<Predicate>),
    /// The child predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Template-text regex predicate.
    pub fn template_matches(pattern: impl Into<String>) -> Self {
        Predicate::TemplateMatches(pattern.into())
    }

    /// Exact variable-value predicate.
    pub fn variable_equals(value: impl Into<String>) -> Self {
        Predicate::VariableEquals(value.into())
    }

    /// Substring variable-value predicate.
    pub fn variable_contains(value: impl Into<String>) -> Self {
        Predicate::VariableContains(value.into())
    }

    /// Sequence-window predicate over `[start, end)`.
    pub fn time_window(start: u64, end: u64) -> Self {
        Predicate::TimeWindow { start, end }
    }

    /// Conjunction with another predicate.
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut children) => {
                children.push(other);
                Predicate::And(children)
            }
            first => Predicate::And(vec![first, other]),
        }
    }

    /// Disjunction with another predicate.
    pub fn or(self, other: Predicate) -> Self {
        match self {
            Predicate::Or(mut children) => {
                children.push(other);
                Predicate::Or(children)
            }
            first => Predicate::Or(vec![first, other]),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// True when no leaf of this predicate inspects individual records
    /// (variables or sequence numbers) — i.e. it can be decided per
    /// resolved node from the template text alone.
    pub fn is_node_only(&self) -> bool {
        match self {
            Predicate::TemplateMatches(_) => true,
            Predicate::VariableEquals(_)
            | Predicate::VariableContains(_)
            | Predicate::TimeWindow { .. } => false,
            Predicate::And(children) | Predicate::Or(children) => {
                children.iter().all(Predicate::is_node_only)
            }
            Predicate::Not(child) => child.is_node_only(),
        }
    }
}

/// The output combinator of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// All template groups (members, saturation, record indices), sorted by
    /// count descending then template ascending.
    GroupBy,
    /// Like [`Aggregate::GroupBy`], truncated to the `k` largest groups.
    TopK(usize),
    /// `(template, count)` pairs, sorted by count descending then template
    /// ascending.
    Distribution,
    /// Number of distinct presentation templates with at least one matching
    /// record.
    CountDistinct,
}

/// A declarative query: predicate + threshold + aggregate.
///
/// ```
/// use bytebrain::query::ast::{Predicate, Query};
///
/// let plan = Query::top_k(5)
///     .at_threshold(0.8)
///     .filter(Predicate::template_matches("worker").and(Predicate::time_window(0, 1_000)))
///     .plan()
///     .unwrap();
/// assert!(plan.predicate().is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Optional record filter; `None` keeps every record.
    pub predicate: Option<Predicate>,
    /// Saturation threshold controlling presentation precision.
    pub threshold: f64,
    /// Output combinator.
    pub aggregate: Aggregate,
}

impl Query {
    fn new(aggregate: Aggregate) -> Self {
        Query {
            predicate: None,
            threshold: DEFAULT_THRESHOLD,
            aggregate,
        }
    }

    /// Group matching records by presentation template.
    pub fn group_by() -> Self {
        Query::new(Aggregate::GroupBy)
    }

    /// Group matching records and keep the `k` largest groups.
    pub fn top_k(k: usize) -> Self {
        Query::new(Aggregate::TopK(k))
    }

    /// Count matching records per presentation template.
    pub fn distribution() -> Self {
        Query::new(Aggregate::Distribution)
    }

    /// Count distinct presentation templates with matching records.
    pub fn count_distinct() -> Self {
        Query::new(Aggregate::CountDistinct)
    }

    /// Set the saturation threshold (clamped to `[0, 1]` at plan time).
    pub fn at_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// AND `predicate` into the query filter.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(match self.predicate.take() {
            Some(existing) => existing.and(predicate),
            None => predicate,
        });
        self
    }

    /// Normalize into an executable [`QueryPlan`].
    pub fn plan(self) -> Result<QueryPlan, PlanError> {
        QueryPlan::from_query(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_filters_into_a_conjunction() {
        let q = Query::group_by()
            .filter(Predicate::variable_equals("a"))
            .filter(Predicate::time_window(0, 10));
        match q.predicate {
            Some(Predicate::And(children)) => assert_eq!(children.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn node_only_classification() {
        assert!(Predicate::template_matches("a")
            .and(Predicate::template_matches("b").not())
            .is_node_only());
        assert!(!Predicate::template_matches("a")
            .or(Predicate::variable_equals("x"))
            .is_node_only());
        assert!(!Predicate::time_window(0, 1).is_node_only());
    }
}
