//! Logical planner: AST normalization, canonical fingerprints, push-down.
//!
//! [`QueryPlan::from_query`] turns a [`Query`]
//! into a normal form executors can run and caches can key on:
//!
//! * regex patterns are validated and rewritten to their canonical
//!   `logregex` form, so `a|b` and `(a)|(b)` plan identically;
//! * `and` / `or` chains are flattened, deduplicated, and sorted by
//!   canonical encoding (commutative predicates hash equal), double
//!   negation is removed, and single-child combinators collapse;
//! * the saturation threshold is clamped to `[0, 1]`.
//!
//! The normalized plan exposes a stable 64-bit FNV-1a [`QueryPlan::fingerprint`]
//! (`QueryPlan::fingerprint`) — the canonical plan hash the service query
//! cache keys on — plus the push-down facts executors need: the required
//! variable-equality conjuncts and the intersected required time window,
//! both of which storage can answer from per-segment column summaries
//! without touching postings.

use crate::query::ast::{Aggregate, Predicate, Query};
use crate::query::clamp_threshold;
use logregex::{canonicalize, Regex, RegexError};
use std::collections::HashMap;
use std::fmt;

/// Planning failed: the AST cannot be normalized.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A `TemplateMatches` pattern failed to parse; the payload is the
    /// offending pattern and the `logregex` error.
    InvalidPattern(String, RegexError),
    /// An `And` / `Or` combinator had no children.
    EmptyCombinator,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::InvalidPattern(pattern, err) => {
                write!(f, "invalid template pattern {pattern:?}: {err}")
            }
            PlanError::EmptyCombinator => write!(f, "and/or combinator with no children"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Output shape of a plan: [`Aggregate`] with `group_by`/`top_k` unified
/// into one limit-carrying form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOutput {
    /// Template groups, truncated to the `limit` largest.
    Groups {
        /// Maximum number of groups returned.
        limit: usize,
    },
    /// Sorted `(template, count)` pairs.
    Distribution,
    /// Count of distinct presentation templates.
    Count,
}

/// A normalized, executable query plan. Construct via [`Query::plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    threshold: f64,
    output: PlanOutput,
    predicate: Option<Predicate>,
    fingerprint: u64,
}

impl QueryPlan {
    /// Normalize `query` into a plan. See the module docs for the rules.
    pub fn from_query(query: Query) -> Result<QueryPlan, PlanError> {
        let threshold = clamp_threshold(query.threshold);
        let output = match query.aggregate {
            Aggregate::GroupBy => PlanOutput::Groups { limit: usize::MAX },
            Aggregate::TopK(k) => PlanOutput::Groups { limit: k },
            Aggregate::Distribution => PlanOutput::Distribution,
            Aggregate::CountDistinct => PlanOutput::Count,
        };
        let predicate = match query.predicate {
            Some(pred) => Some(normalize(pred)?),
            None => None,
        };
        let fingerprint = fingerprint_of(threshold, output, predicate.as_ref());
        Ok(QueryPlan {
            threshold,
            output,
            predicate,
            fingerprint,
        })
    }

    /// Clamped saturation threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Output shape.
    pub fn output(&self) -> PlanOutput {
        self.output
    }

    /// Normalized predicate, if any.
    pub fn predicate(&self) -> Option<&Predicate> {
        self.predicate.as_ref()
    }

    /// Canonical 64-bit plan hash: two queries that normalize to the same
    /// plan fingerprint equal, and any semantic difference (threshold,
    /// output, predicate) changes it.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// True when the predicate (if any) can be decided per resolved node.
    pub fn is_node_only(&self) -> bool {
        self.predicate
            .as_ref()
            .map(Predicate::is_node_only)
            .unwrap_or(true)
    }

    /// Values that every matching record must carry as an exact variable
    /// token: the `VariableEquals` conjuncts of the top-level conjunction.
    /// Storage may skip any segment whose variable-column summary rules one
    /// of these out.
    pub fn required_variable_equals(&self) -> Vec<&str> {
        self.required_conjuncts()
            .iter()
            .filter_map(|pred| match pred {
                Predicate::VariableEquals(value) => Some(value.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Intersection of the required time windows, if any: every matching
    /// record's sequence number must lie in `[start, end)`. Storage may
    /// skip segments entirely outside it.
    pub fn required_window(&self) -> Option<(u64, u64)> {
        let mut window: Option<(u64, u64)> = None;
        for pred in self.required_conjuncts() {
            if let Predicate::TimeWindow { start, end } = pred {
                window = Some(match window {
                    Some((s, e)) => ((*start).max(s), (*end).min(e)),
                    None => (*start, *end),
                });
            }
        }
        window
    }

    /// Top-level conjuncts: the children of an outer `And`, or the single
    /// predicate itself. These are *necessary* conditions, safe to push
    /// down as pruning filters.
    fn required_conjuncts(&self) -> Vec<&Predicate> {
        match &self.predicate {
            None => Vec::new(),
            Some(Predicate::And(children)) => children.iter().collect(),
            Some(single) => vec![single],
        }
    }
}

/// Normalize a predicate tree: canonicalize patterns, flatten/dedupe/sort
/// commutative combinators, drop double negation, collapse singletons.
fn normalize(pred: Predicate) -> Result<Predicate, PlanError> {
    Ok(match pred {
        Predicate::TemplateMatches(pattern) => {
            let canonical = canonicalize(&pattern)
                .map_err(|err| PlanError::InvalidPattern(pattern.clone(), err))?;
            Predicate::TemplateMatches(canonical)
        }
        leaf @ (Predicate::VariableEquals(_)
        | Predicate::VariableContains(_)
        | Predicate::TimeWindow { .. }) => leaf,
        Predicate::And(children) => normalize_combinator(children, true)?,
        Predicate::Or(children) => normalize_combinator(children, false)?,
        Predicate::Not(child) => match normalize(*child)? {
            Predicate::Not(inner) => *inner,
            inner => Predicate::Not(Box::new(inner)),
        },
    })
}

fn normalize_combinator(
    children: Vec<Predicate>,
    conjunction: bool,
) -> Result<Predicate, PlanError> {
    if children.is_empty() {
        return Err(PlanError::EmptyCombinator);
    }
    let mut flat = Vec::with_capacity(children.len());
    for child in children {
        match (normalize(child)?, conjunction) {
            (Predicate::And(nested), true) | (Predicate::Or(nested), false) => flat.extend(nested),
            (other, _) => flat.push(other),
        }
    }
    // Sort by canonical encoding and dedupe: `a AND b` ≡ `b AND a AND a`.
    let mut keyed: Vec<(String, Predicate)> = flat.into_iter().map(|p| (encode(&p), p)).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.dedup_by(|a, b| a.0 == b.0);
    let mut flat: Vec<Predicate> = keyed.into_iter().map(|(_, p)| p).collect();
    Ok(if flat.len() == 1 {
        flat.pop().expect("one child")
    } else if conjunction {
        Predicate::And(flat)
    } else {
        Predicate::Or(flat)
    })
}

/// Unambiguous canonical encoding of a normalized predicate (length-prefixed
/// payloads, so values containing delimiters cannot collide structurally).
fn encode(pred: &Predicate) -> String {
    match pred {
        Predicate::TemplateMatches(p) => format!("re:{}:{p}", p.len()),
        Predicate::VariableEquals(v) => format!("veq:{}:{v}", v.len()),
        Predicate::VariableContains(v) => format!("vin:{}:{v}", v.len()),
        Predicate::TimeWindow { start, end } => format!("win:{start}:{end}"),
        Predicate::And(children) => {
            let inner: Vec<String> = children.iter().map(encode).collect();
            format!("and({})", inner.join(","))
        }
        Predicate::Or(children) => {
            let inner: Vec<String> = children.iter().map(encode).collect();
            format!("or({})", inner.join(","))
        }
        Predicate::Not(child) => format!("not({})", encode(child)),
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn fingerprint_of(threshold: f64, output: PlanOutput, predicate: Option<&Predicate>) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, b"plan-v1|t:");
    fnv1a(&mut hash, &threshold.to_bits().to_le_bytes());
    let output_tag = match output {
        PlanOutput::Groups { limit } => format!("|g:{limit}"),
        PlanOutput::Distribution => "|d".to_string(),
        PlanOutput::Count => "|c".to_string(),
    };
    fnv1a(&mut hash, output_tag.as_bytes());
    fnv1a(&mut hash, b"|p:");
    if let Some(pred) = predicate {
        fnv1a(&mut hash, encode(pred).as_bytes());
    }
    hash
}

/// One record as the predicate evaluator sees it.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    /// Resolved presentation template text (coarsened to the plan threshold).
    pub template: &'a str,
    /// Record sequence number.
    pub seq: u64,
    /// Variable tokens at the wildcard positions of the assigned template.
    pub variables: &'a [String],
}

/// A normalized predicate with its regex literals compiled, ready for
/// repeated evaluation. Both the planned executor and the scan oracle
/// evaluate predicates through this type, so the *semantics* are defined
/// once; what the differential suite exercises is everything around it
/// (postings, pruning, resolution, aggregation).
#[derive(Debug)]
pub struct CompiledPredicate<'p> {
    pred: &'p Predicate,
    regexes: HashMap<&'p str, Regex>,
}

impl<'p> CompiledPredicate<'p> {
    /// Compile all `TemplateMatches` patterns of a *normalized* predicate.
    /// Patterns were validated at plan time, so compilation cannot fail.
    pub fn compile(pred: &'p Predicate) -> Self {
        let mut regexes = HashMap::new();
        collect_regexes(pred, &mut regexes);
        CompiledPredicate { pred, regexes }
    }

    /// Evaluate against one record view.
    pub fn matches(&self, view: &RecordView<'_>) -> bool {
        self.eval(self.pred, view)
    }

    /// Evaluate a node-only predicate against a presentation template text.
    /// Callers must have checked [`Predicate::is_node_only`]; variable and
    /// window leaves evaluate as non-matching here.
    pub fn matches_template(&self, template: &str) -> bool {
        self.matches(&RecordView {
            template,
            seq: 0,
            variables: &[],
        })
    }

    fn eval(&self, pred: &Predicate, view: &RecordView<'_>) -> bool {
        match pred {
            Predicate::TemplateMatches(pattern) => {
                self.regexes[pattern.as_str()].is_match(view.template)
            }
            Predicate::VariableEquals(value) => view.variables.iter().any(|v| v == value),
            Predicate::VariableContains(value) => {
                view.variables.iter().any(|v| v.contains(value.as_str()))
            }
            Predicate::TimeWindow { start, end } => view.seq >= *start && view.seq < *end,
            Predicate::And(children) => children.iter().all(|c| self.eval(c, view)),
            Predicate::Or(children) => children.iter().any(|c| self.eval(c, view)),
            Predicate::Not(child) => !self.eval(child, view),
        }
    }
}

fn collect_regexes<'p>(pred: &'p Predicate, out: &mut HashMap<&'p str, Regex>) {
    match pred {
        Predicate::TemplateMatches(pattern) => {
            out.entry(pattern.as_str())
                .or_insert_with(|| Regex::new(pattern).expect("plan-time validated pattern"));
        }
        Predicate::VariableEquals(_)
        | Predicate::VariableContains(_)
        | Predicate::TimeWindow { .. } => {}
        Predicate::And(children) | Predicate::Or(children) => {
            for child in children {
                collect_regexes(child, out);
            }
        }
        Predicate::Not(child) => collect_regexes(child, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ast::{Predicate as P, Query};

    #[test]
    fn commutative_predicates_share_a_fingerprint() {
        let a = Query::group_by()
            .filter(P::variable_equals("x").and(P::template_matches("ab|cd")))
            .plan()
            .unwrap();
        let b = Query::group_by()
            .filter(P::template_matches("(ab)|(cd)").and(P::variable_equals("x")))
            .plan()
            .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn semantic_differences_change_the_fingerprint() {
        let base = Query::distribution().plan().unwrap();
        let threshold = Query::distribution().at_threshold(0.5).plan().unwrap();
        let output = Query::group_by().plan().unwrap();
        let filtered = Query::distribution()
            .filter(P::variable_equals("x"))
            .plan()
            .unwrap();
        let other_value = Query::distribution()
            .filter(P::variable_equals("y"))
            .plan()
            .unwrap();
        let prints = [
            base.fingerprint(),
            threshold.fingerprint(),
            output.fingerprint(),
            filtered.fingerprint(),
            other_value.fingerprint(),
        ];
        for (i, a) in prints.iter().enumerate() {
            for b in prints.iter().skip(i + 1) {
                assert_ne!(a, b, "distinct plans must hash apart");
            }
        }
    }

    #[test]
    fn normalization_flattens_dedupes_and_unwraps() {
        let plan = Query::group_by()
            .filter(
                P::variable_equals("a")
                    .and(P::variable_equals("a"))
                    .and(P::time_window(5, 9).not().not()),
            )
            .plan()
            .unwrap();
        match plan.predicate().unwrap() {
            Predicate::And(children) => {
                assert_eq!(children.len(), 2, "dedupe + double-not removal");
                assert!(children.contains(&P::variable_equals("a")));
                assert!(children.contains(&P::time_window(5, 9)));
            }
            other => panic!("expected flattened And, got {other:?}"),
        }
        // Singleton combinators collapse to their child.
        let single = Query::group_by()
            .filter(P::And(vec![P::variable_equals("z")]))
            .plan()
            .unwrap();
        assert_eq!(single.predicate(), Some(&P::variable_equals("z")));
    }

    #[test]
    fn invalid_patterns_fail_at_plan_time() {
        let err = Query::group_by()
            .filter(P::template_matches("(unclosed"))
            .plan()
            .unwrap_err();
        assert!(matches!(err, PlanError::InvalidPattern(_, _)));
        assert!(Query::group_by().filter(P::And(vec![])).plan().is_err());
    }

    #[test]
    fn push_down_extraction_reads_only_required_conjuncts() {
        let plan = Query::group_by()
            .filter(
                P::variable_equals("x")
                    .and(P::time_window(10, 100))
                    .and(P::time_window(50, 200))
                    .and(P::variable_equals("y").or(P::variable_equals("z"))),
            )
            .plan()
            .unwrap();
        assert_eq!(plan.required_variable_equals(), vec!["x"]);
        assert_eq!(plan.required_window(), Some((50, 100)));
        // An Or at the top level is not a required conjunct.
        let disjunct = Query::group_by()
            .filter(P::variable_equals("x").or(P::time_window(0, 1)))
            .plan()
            .unwrap();
        assert!(disjunct.required_variable_equals().is_empty());
        assert_eq!(disjunct.required_window(), None);
    }

    #[test]
    fn threshold_is_clamped_at_plan_time() {
        let plan = Query::group_by().at_threshold(7.0).plan().unwrap();
        assert_eq!(plan.threshold(), 1.0);
        let nan = Query::group_by().at_threshold(f64::NAN).plan().unwrap();
        assert_eq!(nan.threshold(), crate::query::DEFAULT_THRESHOLD);
    }

    #[test]
    fn compiled_predicate_evaluates_all_leaves() {
        let plan = Query::group_by()
            .filter(
                P::template_matches("tensor block")
                    .and(P::variable_equals("7").or(P::variable_contains("ms")))
                    .and(P::time_window(100, 200).not()),
            )
            .plan()
            .unwrap();
        let compiled = CompiledPredicate::compile(plan.predicate().unwrap());
        let vars = vec!["7".to_string(), "12ms".to_string()];
        let hit = RecordView {
            template: "gpu worker <*> evicted tensor block <*>",
            seq: 50,
            variables: &vars,
        };
        assert!(compiled.matches(&hit));
        let in_window = RecordView { seq: 150, ..hit };
        assert!(!compiled.matches(&in_window), "negated window excludes");
        let wrong_template = RecordView {
            template: "Accepted password for <*>",
            ..hit
        };
        assert!(!compiled.matches(&wrong_template));
        let no_vars: Vec<String> = Vec::new();
        let wrong_vars = RecordView {
            variables: &no_vars,
            ..hit
        };
        assert!(!compiled.matches(&wrong_vars));
    }
}
