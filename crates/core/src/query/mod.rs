//! Query-time precision control (§3 "Query") and the wildcard-merging presentation
//! optimisation (§7).
//!
//! Online matching always records the *most precise* template id for every log. At query
//! time the user supplies a saturation threshold; the system resolves the recorded node to
//! the **coarsest** live ancestor whose saturation still meets the threshold. Precision can
//! therefore be changed per query — the interactive slider in the production UI — without
//! reparsing logs or storing templates redundantly.
//!
//! Two resolution paths exist:
//!
//! * [`resolve_with_threshold`] — the pointer-chasing reference path: walk the ancestor
//!   chain of the matched node on every call.
//! * [`SaturationLadder`] — the indexed path: a precomputed, per-node flat array of
//!   `(ancestor, saturation)` rungs ordered coarsest-first, so resolution is a single
//!   scan over contiguous memory instead of repeated pointer-chasing through tree nodes.
//!   Ladders are (re)built after training ([`SaturationLadder::build`]) and patched
//!   incrementally after a maintenance delta ([`SaturationLadder::apply_delta`]) — only
//!   the subtrees a delta touched are recomputed.
//!
//! Both paths implement the same semantics and are kept differential-identical by test:
//!
//! 1. **Retired nodes never resolve.** A chain only contains live (non-retired)
//!    ancestors; records that still point at a retired template (e.g. a temporary
//!    absorbed by incremental maintenance mid-stream) resolve to the nearest live
//!    ancestor.
//! 2. **The full chain is scanned.** Delta-patched trees do not guarantee that
//!    saturation increases monotonically from root to leaf, so resolution cannot stop at
//!    the first ancestor below the threshold: the coarsest qualifying ancestor anywhere
//!    on the chain wins, exactly as documented.
//! 3. **Thresholds are clamped** by [`clamp_threshold`] — NaN falls back to
//!    [`DEFAULT_THRESHOLD`], anything outside `[0, 1]` is clamped to the range.

pub mod ast;
pub mod plan;

use crate::incremental::ModelDelta;
use crate::model::ParserModel;
use crate::tree::NodeId;
use std::collections::HashMap;

/// The default saturation threshold used when a query supplies none (or NaN): the value
/// the production UI's precision slider starts at.
pub const DEFAULT_THRESHOLD: f64 = 0.9;

/// Sanitize a user-supplied saturation threshold: NaN becomes [`DEFAULT_THRESHOLD`],
/// finite values are clamped to `[0, 1]`. Every query entry point funnels through this
/// single function, so silent nonsense thresholds cannot reach resolution. Core
/// resolution honours the exact threshold it is given; the service's query surface
/// additionally snaps thresholds to its slider grid (see `service::QueryOptions`) so
/// its cache key always describes exactly the threshold a cached result was computed
/// at.
pub fn clamp_threshold(threshold: f64) -> f64 {
    if threshold.is_nan() {
        DEFAULT_THRESHOLD
    } else {
        threshold.clamp(0.0, 1.0)
    }
}

/// Resolve `node` to the coarsest live ancestor whose saturation is at least `threshold`.
///
/// The entire live ancestor chain (the node itself included, when live) is scanned
/// coarsest-first; retired nodes are skipped. When no live node on the chain meets the
/// threshold, the most precise live node is returned (precision can only be reduced, not
/// invented), and when the chain holds no live node at all — a retired root with no
/// ancestors — the node itself is returned unchanged.
pub fn resolve_with_threshold(model: &ParserModel, node: NodeId, threshold: f64) -> NodeId {
    let threshold = clamp_threshold(threshold);
    // Coarsest-first scan without materialising the chain: remember the first (i.e.
    // coarsest) qualifying live node seen while walking root-ward, plus the most
    // precise live node as the fallback.
    let mut coarsest_qualifying = None;
    let mut most_precise_live = None;
    let mut current = Some(node);
    while let Some(id) = current {
        let n = &model.nodes[id.0];
        if !n.retired {
            if most_precise_live.is_none() {
                most_precise_live = Some(id);
            }
            if n.saturation >= threshold {
                // Walking precise→coarse: the last qualifying node seen is the coarsest.
                coarsest_qualifying = Some(id);
            }
        }
        current = n.parent;
    }
    coarsest_qualifying.or(most_precise_live).unwrap_or(node)
}

/// Resolve a batch of matched node ids against a threshold (parallel query processing is
/// handled by the service layer; the per-id walk is already O(depth)).
pub fn resolve_batch(model: &ParserModel, nodes: &[NodeId], threshold: f64) -> Vec<NodeId> {
    nodes
        .iter()
        .map(|&n| resolve_with_threshold(model, n, threshold))
        .collect()
}

/// One step of a node's precomputed ancestor ladder: a live ancestor and its saturation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderRung {
    /// The live ancestor (or the node itself).
    pub node: NodeId,
    /// That ancestor's saturation score.
    pub saturation: f64,
}

/// The indexed resolution structure: for every node of a model, the chain of **live**
/// ancestors (the node itself included when live) annotated with their saturations,
/// ordered coarsest (root) first.
///
/// [`SaturationLadder::resolve`] is a single forward scan over one flat rung array —
/// no pointer-chasing, no tree-node loads — and returns exactly what
/// [`resolve_with_threshold`] returns on the same model.
///
/// Lifecycle: built from scratch after (re)training via [`SaturationLadder::build`];
/// patched in place after an incremental maintenance delta via
/// [`SaturationLadder::apply_delta`], which recomputes only the subtrees the delta
/// touched; extended one rung array at a time when the online matcher inserts a
/// temporary template via [`SaturationLadder::push_root`]. Any out-of-band structural
/// change (manual [`ParserModel::retire`], re-parenting) requires a rebuild.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SaturationLadder {
    /// `rungs[id]` = live ancestor chain of node `id`, coarsest first. Empty when the
    /// node has no live ancestor at all (a retired root).
    rungs: Vec<Vec<LadderRung>>,
}

impl SaturationLadder {
    /// Precompute the ladder of every node in `model`.
    pub fn build(model: &ParserModel) -> Self {
        let mut ladder = SaturationLadder {
            rungs: Vec::with_capacity(model.len()),
        };
        for id in 0..model.len() {
            ladder.rungs.push(Self::chain_of(model, NodeId(id)));
        }
        ladder
    }

    /// The live ancestor chain of one node, coarsest first (direct walk — used for
    /// builds and for the subtrees a delta touched).
    fn chain_of(model: &ParserModel, node: NodeId) -> Vec<LadderRung> {
        let mut chain: Vec<LadderRung> = Vec::new();
        let mut current = Some(node);
        while let Some(id) = current {
            let n = &model.nodes[id.0];
            if !n.retired {
                chain.push(LadderRung {
                    node: id,
                    saturation: n.saturation,
                });
            }
            current = n.parent;
        }
        chain.reverse();
        chain
    }

    /// Number of per-node rung arrays (equals the model's node count).
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// True when the ladder covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The precomputed rung array of `node`, coarsest first.
    pub fn rungs_of(&self, node: NodeId) -> &[LadderRung] {
        &self.rungs[node.0]
    }

    /// Resolve `node` against `threshold` with one forward scan over its rung array.
    /// Semantics identical to [`resolve_with_threshold`] (verified by test).
    pub fn resolve(&self, node: NodeId, threshold: f64) -> NodeId {
        let threshold = clamp_threshold(threshold);
        let rungs = &self.rungs[node.0];
        let Some(last) = rungs.last() else {
            return node;
        };
        rungs
            .iter()
            .find(|r| r.saturation >= threshold)
            .unwrap_or(last)
            .node
    }

    /// Resolve a batch of node ids, amortizing ladder lookups: records matched to the
    /// same template (the overwhelmingly common case in log workloads) resolve once.
    pub fn resolve_batch(&self, nodes: &[NodeId], threshold: f64) -> Vec<NodeId> {
        let threshold = clamp_threshold(threshold);
        let mut memo: HashMap<NodeId, NodeId> = HashMap::new();
        nodes
            .iter()
            .map(|&n| *memo.entry(n).or_insert_with(|| self.resolve(n, threshold)))
            .collect()
    }

    /// Append the rung array of a node just pushed onto `model` (the online matcher's
    /// temporary-template insertion). The node must be `model`'s last node.
    pub fn push_root(&mut self, model: &ParserModel, node: NodeId) {
        debug_assert_eq!(node.0, model.len() - 1, "push_root expects the newest node");
        debug_assert_eq!(self.rungs.len(), node.0, "ladder out of sync with model");
        self.rungs.push(Self::chain_of(model, node));
    }

    /// Patch the ladder after `delta` was applied to produce `patched` (the model
    /// returned by [`crate::incremental::apply_delta`]). Only touched subtrees are
    /// recomputed:
    ///
    /// * the subtree under every patched node (its saturation may have changed, and
    ///   that saturation appears on every descendant's ladder),
    /// * every appended node,
    /// * every retired temporary (its own rung array loses its only live entry).
    ///
    /// The result is identical to `SaturationLadder::build(patched)` — verified by
    /// test — at a fraction of the cost when the delta is small.
    pub fn apply_delta(&mut self, patched: &ParserModel, delta: &ModelDelta) {
        // Appended nodes (including any retired placeholder padding): fresh chains.
        while self.rungs.len() < patched.len() {
            let id = NodeId(self.rungs.len());
            self.rungs.push(Self::chain_of(patched, id));
        }
        // Patched subtrees: the patched node's saturation sits on every descendant's
        // ladder, so the whole subtree recomputes (children lists in `patched` already
        // include any appended nodes, whose chains recompute harmlessly).
        let mut stack: Vec<NodeId> = delta.patches.iter().map(|p| p.node).collect();
        while let Some(id) = stack.pop() {
            self.rungs[id.0] = Self::chain_of(patched, id);
            stack.extend(patched.nodes[id.0].children.iter().copied());
        }
        // Retired temporaries: childless roots whose own rung array just emptied.
        for node in &patched.nodes {
            if node.temporary && node.retired && node.id.0 < self.rungs.len() {
                self.rungs[node.id.0] = Self::chain_of(patched, node.id);
            }
        }
    }
}

/// Template text for a node after applying the query-result optimisation of §7: runs of
/// consecutive wildcards collapse into a single `*`, so `users * * *` and `users *`
/// present identically even though the underlying fixed-length templates differ.
pub fn presentation_template(model: &ParserModel, node: NodeId) -> String {
    merge_consecutive_wildcards(&model.nodes[node.0].template_text())
}

/// Collapse runs of consecutive `*` tokens in a space-separated template string.
pub fn merge_consecutive_wildcards(template: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    let mut previous_was_wildcard = false;
    for token in template.split_whitespace() {
        let is_wildcard = token == "*";
        if is_wildcard && previous_was_wildcard {
            continue;
        }
        out.push(token);
        previous_was_wildcard = is_wildcard;
    }
    out.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::train_delta;
    use crate::train::train;
    use crate::tree::{TemplateToken, TreeNode};
    use crate::TrainConfig;

    fn make_node(sat: f64, depth: usize, text: &[&str]) -> TreeNode {
        TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: text
                .iter()
                .map(|t| {
                    if *t == "*" {
                        TemplateToken::Wildcard
                    } else {
                        TemplateToken::Const(t.to_string())
                    }
                })
                .collect(),
            saturation: sat,
            depth,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        }
    }

    /// Build a linear chain root → mid → leaf with increasing saturation.
    fn chain_model() -> (ParserModel, NodeId, NodeId, NodeId) {
        let mut model = ParserModel::new();
        let root = model.push_node(make_node(0.3, 0, &["*", "lock", "*", "*"]));
        let mid = model.push_node(make_node(0.7, 1, &["release", "lock", "*", "*"]));
        let leaf = model.push_node(make_node(0.95, 2, &["release", "lock", "*", "null"]));
        model.add_root(root);
        model.attach_child(root, mid);
        model.attach_child(mid, leaf);
        model.rebuild_match_order();
        (model, root, mid, leaf)
    }

    #[test]
    fn low_threshold_selects_the_root() {
        let (model, root, _, leaf) = chain_model();
        assert_eq!(resolve_with_threshold(&model, leaf, 0.1), root);
    }

    #[test]
    fn medium_threshold_selects_the_middle_node() {
        let (model, _, mid, leaf) = chain_model();
        assert_eq!(resolve_with_threshold(&model, leaf, 0.6), mid);
    }

    #[test]
    fn high_threshold_keeps_the_leaf() {
        let (model, _, _, leaf) = chain_model();
        assert_eq!(resolve_with_threshold(&model, leaf, 0.9), leaf);
        // Threshold above the leaf's own saturation still returns the leaf.
        assert_eq!(resolve_with_threshold(&model, leaf, 0.99), leaf);
    }

    #[test]
    fn resolving_from_an_interior_node_walks_up_only() {
        let (model, root, mid, _) = chain_model();
        assert_eq!(resolve_with_threshold(&model, mid, 0.2), root);
        assert_eq!(resolve_with_threshold(&model, mid, 0.65), mid);
    }

    #[test]
    fn batch_resolution_matches_individual_resolution() {
        let (model, _, mid, leaf) = chain_model();
        let out = resolve_batch(&model, &[leaf, mid, leaf], 0.6);
        assert_eq!(out, vec![mid, mid, mid]);
    }

    // -- bugfix: retired nodes never resolve --------------------------------

    #[test]
    fn retired_nodes_are_skipped_to_the_nearest_live_ancestor() {
        let (mut model, root, mid, leaf) = chain_model();
        model.retire(leaf);
        model.rebuild_match_order();
        // A record still pointing at the retired leaf resolves to live nodes only.
        assert_eq!(resolve_with_threshold(&model, leaf, 0.99), mid);
        assert_eq!(resolve_with_threshold(&model, leaf, 0.6), mid);
        assert_eq!(resolve_with_threshold(&model, leaf, 0.1), root);
        let ladder = SaturationLadder::build(&model);
        assert_eq!(ladder.resolve(leaf, 0.99), mid);
        assert_eq!(ladder.resolve(leaf, 0.1), root);
    }

    #[test]
    fn retired_interior_node_is_transparent() {
        let (mut model, root, mid, leaf) = chain_model();
        model.nodes[mid.0].retired = true;
        model.rebuild_match_order();
        // The chain of the leaf is now leaf → root; mid can never be returned.
        assert_eq!(resolve_with_threshold(&model, leaf, 0.6), leaf);
        assert_eq!(resolve_with_threshold(&model, leaf, 0.2), root);
        let ladder = SaturationLadder::build(&model);
        assert_eq!(ladder.resolve(leaf, 0.6), leaf);
        assert_eq!(ladder.resolve(leaf, 0.2), root);
    }

    #[test]
    fn fully_retired_chain_returns_the_node_itself() {
        let mut model = ParserModel::new();
        let lonely = model.push_node(make_node(1.0, 0, &["ephemeral", "event"]));
        model.add_root(lonely);
        model.retire(lonely);
        model.rebuild_match_order();
        assert_eq!(resolve_with_threshold(&model, lonely, 0.5), lonely);
        assert_eq!(SaturationLadder::build(&model).resolve(lonely, 0.5), lonely);
    }

    // -- bugfix: non-monotone chains scan fully -----------------------------

    #[test]
    fn coarser_qualifying_ancestor_wins_even_after_a_dip() {
        // Delta-patched trees can dip: root 0.8, mid 0.4, leaf 0.9.
        let mut model = ParserModel::new();
        let root = model.push_node(make_node(0.8, 0, &["*", "lock", "*"]));
        let mid = model.push_node(make_node(0.4, 1, &["acquire", "lock", "*"]));
        let leaf = model.push_node(make_node(0.9, 2, &["acquire", "lock", "7"]));
        model.add_root(root);
        model.attach_child(root, mid);
        model.attach_child(mid, leaf);
        model.rebuild_match_order();
        // The old walk stopped at mid (0.4 < 0.7) and kept the leaf; the doc promises
        // the coarsest qualifying ancestor — the root.
        assert_eq!(resolve_with_threshold(&model, leaf, 0.7), root);
        // Below the dip everything qualifies: still the root.
        assert_eq!(resolve_with_threshold(&model, leaf, 0.3), root);
        // Only the leaf qualifies above 0.8.
        assert_eq!(resolve_with_threshold(&model, leaf, 0.85), leaf);
        let ladder = SaturationLadder::build(&model);
        for t in [0.3, 0.7, 0.85] {
            assert_eq!(
                ladder.resolve(leaf, t),
                resolve_with_threshold(&model, leaf, t)
            );
        }
    }

    // -- threshold clamping --------------------------------------------------

    #[test]
    fn thresholds_are_clamped_in_one_place() {
        assert_eq!(clamp_threshold(f64::NAN), DEFAULT_THRESHOLD);
        assert_eq!(clamp_threshold(-0.5), 0.0);
        assert_eq!(clamp_threshold(1.5), 1.0);
        assert_eq!(clamp_threshold(0.0), 0.0);
        assert_eq!(clamp_threshold(1.0), 1.0);
        assert_eq!(clamp_threshold(0.42), 0.42);
        assert_eq!(clamp_threshold(f64::INFINITY), 1.0);
        assert_eq!(clamp_threshold(f64::NEG_INFINITY), 0.0);
        // Core resolution honours exact in-range thresholds — no silent snapping.
        assert_eq!(clamp_threshold(0.8995), 0.8995);
    }

    #[test]
    fn resolution_applies_the_clamp() {
        let (model, root, _, leaf) = chain_model();
        // NaN → default 0.9 → leaf; negative → 0 → root; >1 → 1 → leaf (nothing
        // qualifies, most precise live wins).
        assert_eq!(resolve_with_threshold(&model, leaf, f64::NAN), leaf);
        assert_eq!(resolve_with_threshold(&model, leaf, -3.0), root);
        assert_eq!(resolve_with_threshold(&model, leaf, 7.0), leaf);
        let ladder = SaturationLadder::build(&model);
        assert_eq!(ladder.resolve(leaf, f64::NAN), leaf);
        assert_eq!(ladder.resolve(leaf, -3.0), root);
    }

    // -- ladder --------------------------------------------------------------

    #[test]
    fn ladder_matches_pointer_walk_on_a_trained_model() {
        let records: Vec<String> = (0..80)
            .map(|i| format!("request {} served from cache {} in {}ms", i, i % 4, i % 9))
            .collect();
        let model = train(&records, &TrainConfig::default()).model;
        let ladder = SaturationLadder::build(&model);
        assert_eq!(ladder.len(), model.len());
        for id in 0..model.len() {
            for t in [0.0, 0.2, 0.45, 0.6, 0.8, 0.95, 1.0] {
                assert_eq!(
                    ladder.resolve(NodeId(id), t),
                    resolve_with_threshold(&model, NodeId(id), t),
                    "ladder diverged for node {id} at threshold {t}"
                );
            }
        }
    }

    #[test]
    fn ladder_rungs_are_coarsest_first() {
        let (model, root, mid, leaf) = chain_model();
        let ladder = SaturationLadder::build(&model);
        let rungs: Vec<NodeId> = ladder.rungs_of(leaf).iter().map(|r| r.node).collect();
        assert_eq!(rungs, vec![root, mid, leaf]);
        assert!(!ladder.is_empty());
    }

    #[test]
    fn ladder_batch_resolution_matches_individual() {
        let (model, _, mid, leaf) = chain_model();
        let ladder = SaturationLadder::build(&model);
        let out = ladder.resolve_batch(&[leaf, mid, leaf, leaf], 0.6);
        assert_eq!(out, vec![mid, mid, mid, mid]);
    }

    #[test]
    fn ladder_push_root_tracks_temporary_insertion() {
        let records: Vec<String> = (0..40)
            .map(|i| format!("request {} served in {}ms", i, i % 9))
            .collect();
        let mut model = train(&records, &TrainConfig::default()).model;
        let mut ladder = SaturationLadder::build(&model);
        let temp = model.insert_temporary(&["never".into(), "seen".into()]);
        ladder.push_root(&model, temp);
        assert_eq!(ladder.len(), model.len());
        assert_eq!(ladder.resolve(temp, 0.5), temp);
        assert_eq!(ladder, SaturationLadder::build(&model));
    }

    #[test]
    fn delta_patched_ladder_equals_a_full_rebuild() {
        let config = TrainConfig::default();
        let base: Vec<String> = (0..60)
            .map(|i| format!("request {} served from cache {} in {}ms", i, i % 4, i % 9))
            .collect();
        let mut model = train(&base, &config).model;
        // Live temporaries that the delta will retire.
        model.insert_temporary(&["circuit".into(), "breaker".into(), "opened".into()]);
        let mut ladder = SaturationLadder::build(&model);
        let drift: Vec<String> = (0..30)
            .map(|i| format!("circuit breaker opened for upstream svc-{}", i % 6))
            .collect();
        let delta = train_delta(&model, &drift, &config, 0.6);
        let patched = crate::incremental::apply_delta(&model, &delta);
        ladder.apply_delta(&patched, &delta);
        assert_eq!(
            ladder,
            SaturationLadder::build(&patched),
            "incrementally patched ladder must equal a full rebuild"
        );
        // And a folding delta (same family) that patches existing subtrees.
        let folding: Vec<String> = (100..140)
            .map(|i| format!("request {} served from cache {} in {}ms", i, i % 3, i % 7))
            .collect();
        let delta2 = train_delta(&patched, &folding, &config, 0.6);
        let patched2 = crate::incremental::apply_delta(&patched, &delta2);
        ladder.apply_delta(&patched2, &delta2);
        assert_eq!(ladder, SaturationLadder::build(&patched2));
    }

    // -- presentation merging -------------------------------------------------

    #[test]
    fn wildcard_merging_examples_from_the_paper() {
        // print(f"users={users}") with 1, 2 and 3 elements → identical presentation.
        assert_eq!(merge_consecutive_wildcards("users *"), "users *");
        assert_eq!(merge_consecutive_wildcards("users * *"), "users *");
        assert_eq!(merge_consecutive_wildcards("users * * *"), "users *");
        // Interior runs collapse too, separated constants keep their own wildcard.
        assert_eq!(
            merge_consecutive_wildcards("copy * * to * done"),
            "copy * to * done"
        );
    }

    #[test]
    fn presentation_template_uses_merged_wildcards() {
        let (model, root, _, _) = chain_model();
        assert_eq!(presentation_template(&model, root), "* lock *");
    }

    #[test]
    fn merging_is_idempotent() {
        let once = merge_consecutive_wildcards("a * * b * * * c");
        let twice = merge_consecutive_wildcards(&once);
        assert_eq!(once, twice);
        assert_eq!(once, "a * b * c");
    }
}
