//! Automaton-compiled matching (ROADMAP item 1): compile the live (non-retired)
//! template set into a single multi-pattern automaton over masked token streams,
//! so matching one record costs one state transition per token instead of one
//! positional comparison per template per token.
//!
//! The construction is the token-trie → subset-construction DFA move reported by
//! production log pipelines (trie with wildcard edges, determinized with
//! structural sharing of suffix state sets, fronted by a keyed match cache):
//!
//! 1. **Trie**: every live template contributes a path of interned const-token
//!    edges and `<*>` wildcard edges. Templates with identical token sequences
//!    share the whole path; templates with a shared prefix share the prefix.
//!    Nodes are reference-counted so template *removal* (retirement during
//!    incremental maintenance) prunes exactly the now-unused suffix.
//! 2. **DFA**: the trie is a nondeterministic automaton (a token can follow a
//!    const edge *and* a wildcard edge), so we determinize: a DFA state is a
//!    hash-consed sorted set of trie nodes, with one transition per const symbol
//!    seen at the set plus a *default* transition following wildcard edges only.
//!    Every DFA state precomputes its winning accept — the minimum-rank template
//!    among its members, where rank is the position in
//!    [`ParserModel::match_order`]. Because the tree walker returns the *first*
//!    match in that order, "first match in a linear scan" ≡ "minimum rank among
//!    all matches", and the DFA reproduces the tree walker byte-for-byte.
//! 3. **NFA fallback**: wildcard-heavy template sets can make subset
//!    construction explode, so determinization is capped
//!    ([`DEFAULT_MAX_DFA_STATES`]); past the cap the matcher falls back to
//!    active-set simulation over the trie, which is always linear in trie size.
//! 4. **Match cache** ([`MatchCache`]): a keyed LRU over raw record lines.
//!    Production log streams are highly repetitive, so an exact-line hit skips
//!    preprocessing *and* matching. Entries are invalidated wholesale when the
//!    compiled snapshot's [`generation`](CompiledMatcher::generation) changes.
//!
//! Lifecycle: the service layer keeps an `Arc<CompiledMatcher>` snapshot next
//! to the model and the saturation ladder. Training compiles from scratch
//! ([`CompiledMatcher::compile`]); a [`ModelDelta`](crate::incremental) boundary
//! patches the previous snapshot ([`CompiledMatcher::refreshed`]) — the trie is
//! updated in place (only changed templates are removed/inserted) and the DFA
//! is re-determinized from the patched trie. Readers never observe a partially
//! updated automaton: they hold the old `Arc` until the swap.

use crate::matcher::Matcher;
use crate::model::ParserModel;
use crate::tree::{NodeId, TemplateToken};
use logtok::{Preprocessor, TokenScratch, TokenView};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which matching engine a topic routes records through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MatchEngine {
    /// Compiled multi-pattern automaton (the default hot path).
    #[default]
    Automaton,
    /// Linear tree walk over `match_order` — the escape hatch, and the
    /// reference implementation the automaton is differentially tested against.
    TreeWalk,
}

/// Determinization cap: past this many DFA states the compiler abandons subset
/// construction and matches by NFA active-set simulation instead.
pub const DEFAULT_MAX_DFA_STATES: usize = 65_536;

/// Sentinel for "no node" in trie/DFA link fields.
const NONE: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// FNV hashing (same function family as logtok's token hash-encoder)
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a streaming hasher: fast on the short keys (tokens, log lines) this
/// module hashes, and free of the per-instance random state `SipHash` pays for.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// `BuildHasher` producing [`FnvHasher`]s (deterministic across processes).
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(FNV_OFFSET)
    }
}

type FnvMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// One-shot FNV-1a over `bytes` (the loop form the hot paths inline).
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------------
// Token interner
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SymbolEntry {
    text: Box<str>,
    /// Number of (template, position) usages; 0 marks a recycled slot.
    refs: u32,
}

/// Interns const template tokens to dense `u32` symbols so trie edges and DFA
/// transitions compare integers, not strings. Slots are reference-counted and
/// recycled when the last template using a token is removed.
#[derive(Debug, Clone, Default)]
struct Interner {
    ids: FnvMap<Box<str>, u32>,
    symbols: Vec<SymbolEntry>,
    free: Vec<u32>,
}

impl Interner {
    /// Intern `text`, bumping its refcount.
    fn intern(&mut self, text: &str) -> u32 {
        if let Some(&sym) = self.ids.get(text) {
            self.symbols[sym as usize].refs += 1;
            return sym;
        }
        let entry = SymbolEntry {
            text: text.into(),
            refs: 1,
        };
        let sym = match self.free.pop() {
            Some(slot) => {
                self.symbols[slot as usize] = entry;
                slot
            }
            None => {
                self.symbols.push(entry);
                (self.symbols.len() - 1) as u32
            }
        };
        self.ids.insert(text.into(), sym);
        sym
    }

    fn text(&self, sym: u32) -> &str {
        &self.symbols[sym as usize].text
    }

    /// Drop one usage of `sym`; recycles the slot when the count reaches zero.
    fn release(&mut self, sym: u32) {
        let entry = &mut self.symbols[sym as usize];
        entry.refs -= 1;
        if entry.refs == 0 {
            self.ids.remove(&entry.text);
            self.free.push(sym);
        }
    }

    /// Number of live interned symbols.
    fn len(&self) -> usize {
        self.ids.len()
    }

    /// One past the highest symbol id in use — the width of a dense DFA
    /// transition row. Larger than [`len`](Interner::len) when recycled slots
    /// fragment the id range (compaction closes the gap).
    fn symbol_range(&self) -> usize {
        self.symbols.len()
    }

    /// Fraction of the id range occupied by recycled (dead) slots.
    fn fragmentation(&self) -> f64 {
        if self.symbols.is_empty() {
            0.0
        } else {
            self.free.len() as f64 / self.symbols.len() as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Open-addressing symbol table (the match-path token → symbol lookup)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct SymSlot {
    hash: u64,
    /// Interned symbol id, or [`NONE`] for an empty slot.
    sym: u32,
}

/// FNV-keyed open-addressing (linear probing) table mapping masked token text
/// to interned symbol ids. This replaces the std `HashMap` probe on the match
/// hot path: one FNV hash, one masked index, and (almost always) one slot load.
/// Entries are verified against the interner's stored text on a hash hit, so a
/// 64-bit collision degrades to a miss-and-compare, never a wrong symbol —
/// byte-identity with the tree walk is absolute, not probabilistic.
///
/// The table is rebuilt as part of every compiled snapshot (compile and
/// `refreshed` both finish through [`CompiledMatcher::finalize`]) and shared
/// read-only by every worker via the snapshot `Arc`.
#[derive(Debug, Clone, Default)]
struct SymbolTable {
    slots: Vec<SymSlot>,
    mask: usize,
}

impl SymbolTable {
    /// Build from the interner's live symbols at ≤ 50% load factor.
    fn build(interner: &Interner) -> Self {
        let live = interner.len();
        if live == 0 {
            return SymbolTable::default();
        }
        let capacity = (live * 2).next_power_of_two().max(16);
        let mask = capacity - 1;
        let mut slots = vec![SymSlot { hash: 0, sym: NONE }; capacity];
        for (text, &sym) in &interner.ids {
            let hash = fnv1a(text.as_bytes());
            let mut idx = (hash as usize) & mask;
            while slots[idx].sym != NONE {
                idx = (idx + 1) & mask;
            }
            slots[idx] = SymSlot { hash, sym };
        }
        SymbolTable { slots, mask }
    }

    /// Resolve `token` to its symbol id, or `None` when never interned.
    #[inline]
    fn lookup(&self, token: &str, interner: &Interner) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let hash = fnv1a(token.as_bytes());
        let mut idx = (hash as usize) & self.mask;
        loop {
            let slot = self.slots[idx];
            if slot.sym == NONE {
                return None;
            }
            if slot.hash == hash && interner.text(slot.sym) == token {
                return Some(slot.sym);
            }
            idx = (idx + 1) & self.mask;
        }
    }
}

// ---------------------------------------------------------------------------
// Template trie
// ---------------------------------------------------------------------------

/// One token of an interned template sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TplSym {
    Const(u32),
    Wildcard,
}

#[derive(Debug, Clone, Default)]
struct TrieNode {
    /// Const-token edges, sorted by symbol id for binary search.
    edges: Vec<(u32, u32)>,
    /// Wildcard (`<*>`) edge, taken by *any* token.
    wildcard: u32,
    /// Templates whose token sequence ends exactly here.
    accepts: Vec<NodeId>,
    /// Number of template sequences whose path passes through (or ends at)
    /// this node; 0 marks a recycled slot.
    refs: u32,
}

impl TrieNode {
    fn fresh() -> Self {
        TrieNode {
            edges: Vec::new(),
            wildcard: NONE,
            accepts: Vec::new(),
            refs: 0,
        }
    }

    fn child(&self, sym: u32) -> Option<u32> {
        self.edges
            .binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|pos| self.edges[pos].1)
    }
}

const TRIE_ROOT: u32 = 0;

// ---------------------------------------------------------------------------
// DFA
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct DfaState {
    /// Const-symbol transitions, sorted by symbol id.
    edges: Vec<(u32, u32)>,
    /// Transition for any token without a const edge here ([`NONE`] = dead:
    /// no template can match any extension of this prefix).
    default: u32,
    /// Winning template if the record ends in this state: the minimum-rank
    /// member accept, i.e. exactly what the linear tree walk would return.
    accept: Option<NodeId>,
    /// Offset of this state's dense transition row in the shared row arena,
    /// or [`NONE`] when the state is cold (sparse binary search). A dense row
    /// holds one `u32` target per symbol id in `0..symbol_range`, pre-filled
    /// with `default` so a transition is exactly one array load.
    dense_row: u32,
}

impl DfaState {
    fn new() -> Self {
        DfaState {
            edges: Vec::new(),
            default: NONE,
            accept: None,
            dense_row: NONE,
        }
    }
}

#[derive(Debug, Clone)]
enum Exec {
    Dfa {
        states: Vec<DfaState>,
        /// Dense transition row arena (hybrid encoding): hot states index this
        /// with `dense_row + sym`; cold states keep sorted-edge binary search.
        dense: Vec<u32>,
    },
    /// Subset construction exceeded the state cap; match by active-set
    /// simulation over the trie instead.
    Nfa,
}

/// How DFA transitions are stored. [`Hybrid`](DfaEncoding::Hybrid) is the
/// production default; the pure variants exist for benchmarking and for the
/// differential property suite, which proves all three byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DfaEncoding {
    /// Sorted-edge binary search for every state (the pre-hybrid layout).
    Sparse,
    /// A dense row for every state with at least one edge, budget permitting.
    Dense,
    /// Dense rows for hot states (≥ [`DENSE_EDGE_THRESHOLD`] edges), sparse
    /// edges for the long cold tail.
    #[default]
    Hybrid,
}

/// Minimum edge count for a state to earn a dense row under
/// [`DfaEncoding::Hybrid`]. Below this, binary search over the sorted edge
/// vector touches fewer cache lines than a row load would save.
pub const DENSE_EDGE_THRESHOLD: usize = 4;

/// Upper bound on total dense-row entries (`rows × symbol_range`); 4 bytes
/// each, so this caps the arena at 16 MiB. Rows are granted to the widest
/// states first, so a pathological snapshot degrades to sparse, never OOM.
const DENSE_BUDGET_ENTRIES: usize = 1 << 22;

/// Interner fragmentation (recycled id slots ÷ id range) above which
/// [`CompiledMatcher::refreshed`] compacts symbol ids before re-determinizing,
/// keeping dense rows sized to the live symbol count under delta churn.
const COMPACT_FRAGMENTATION: f64 = 0.25;

// ---------------------------------------------------------------------------
// CompiledMatcher
// ---------------------------------------------------------------------------

/// Monotone generation counter: every compiled snapshot gets a process-unique
/// generation, which is the cache-invalidation key for [`MatchCache`].
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// A compiled snapshot of one model's live template set. Immutable once built;
/// the service layer shares it via `Arc` and swaps whole snapshots at delta
/// boundaries (same lifecycle as the saturation ladder).
#[derive(Debug, Clone)]
pub struct CompiledMatcher {
    interner: Interner,
    trie: Vec<TrieNode>,
    free_trie: Vec<u32>,
    /// Live template sequences by `NodeId.0`, so a later
    /// [`refreshed`](CompiledMatcher::refreshed) knows which path to remove
    /// when a template is retired or rewritten.
    templates: FnvMap<usize, Vec<TplSym>>,
    /// `rank[id]` = position of `NodeId(id)` in the model's match order
    /// (`u32::MAX` for non-live nodes). Lower rank wins.
    ranks: Vec<u32>,
    /// Open-addressing token → symbol lookup used by the match hot path;
    /// rebuilt in [`finalize`](CompiledMatcher::finalize) for every snapshot.
    symbols: SymbolTable,
    exec: Exec,
    encoding: DfaEncoding,
    max_dfa_states: usize,
    generation: u64,
}

impl CompiledMatcher {
    /// Compile `model`'s live (non-retired) template set from scratch.
    pub fn compile(model: &ParserModel) -> Self {
        Self::compile_with_limit(model, DEFAULT_MAX_DFA_STATES)
    }

    /// [`compile`](CompiledMatcher::compile) with an explicit determinization
    /// cap — tests use a tiny cap to force the NFA fallback path.
    pub fn compile_with_limit(model: &ParserModel, max_dfa_states: usize) -> Self {
        Self::compile_with(model, max_dfa_states, DfaEncoding::default())
    }

    /// [`compile`](CompiledMatcher::compile) with an explicit transition
    /// encoding — benches and the differential suite compare all variants.
    pub fn compile_with_encoding(model: &ParserModel, encoding: DfaEncoding) -> Self {
        Self::compile_with(model, DEFAULT_MAX_DFA_STATES, encoding)
    }

    fn compile_with(model: &ParserModel, max_dfa_states: usize, encoding: DfaEncoding) -> Self {
        let mut compiled = CompiledMatcher {
            interner: Interner::default(),
            trie: vec![TrieNode {
                refs: 1, // the root is never recycled
                ..TrieNode::fresh()
            }],
            free_trie: Vec::new(),
            templates: FnvMap::default(),
            ranks: Vec::new(),
            symbols: SymbolTable::default(),
            exec: Exec::Nfa,
            encoding,
            max_dfa_states,
            generation: 0,
        };
        compiled.reconcile(model);
        compiled.finalize();
        compiled
    }

    /// Produce a new snapshot consistent with `model` by *patching* this one:
    /// templates that are unchanged keep their trie paths untouched; retired
    /// or rewritten templates are pruned; new templates are inserted; the DFA
    /// (including the dense transition rows) is rebuilt from the patched trie,
    /// and symbol ids are compacted when delta churn has fragmented the id
    /// range (dense row width tracks the live symbol count). Called at every
    /// `apply_delta`/`swap_model` boundary. Equivalent (proven by the property
    /// suite) to [`CompiledMatcher::compile`] on the post-delta model.
    pub fn refreshed(&self, model: &ParserModel) -> Self {
        let mut next = self.clone();
        next.reconcile(model);
        next.finalize();
        next
    }

    /// Shared tail of compile/refresh: compact fragmented symbol ids, rebuild
    /// the open-addressing symbol table, re-determinize (which also lays out
    /// the dense rows), and stamp a fresh generation.
    fn finalize(&mut self) {
        if self.interner.fragmentation() > COMPACT_FRAGMENTATION {
            self.compact_symbols();
        }
        self.symbols = SymbolTable::build(&self.interner);
        self.determinize();
        self.generation = GENERATION.fetch_add(1, Ordering::Relaxed);
    }

    /// Reassign live symbol ids to the compact range `0..live_count`,
    /// rewriting trie edges and stored template sequences. The remap is
    /// monotone in the old id, so sorted edge vectors stay sorted.
    fn compact_symbols(&mut self) {
        let mut remap = vec![NONE; self.interner.symbols.len()];
        let mut kept = Vec::with_capacity(self.interner.len());
        for (old, entry) in self.interner.symbols.iter().enumerate() {
            if entry.refs > 0 {
                remap[old] = kept.len() as u32;
                kept.push(entry.clone());
            }
        }
        self.interner.symbols = kept;
        self.interner.free.clear();
        for sym in self.interner.ids.values_mut() {
            *sym = remap[*sym as usize];
        }
        for node in &mut self.trie {
            for edge in &mut node.edges {
                edge.0 = remap[edge.0 as usize];
            }
        }
        for seq in self.templates.values_mut() {
            for sym in seq.iter_mut() {
                if let TplSym::Const(s) = sym {
                    *s = remap[*s as usize];
                }
            }
        }
    }

    /// Process-unique id of this snapshot; [`MatchCache`] keys on it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of live templates compiled in.
    pub fn live_templates(&self) -> usize {
        self.templates.len()
    }

    /// Number of live trie nodes (structural sharing makes this far smaller
    /// than total template tokens on real template sets).
    pub fn trie_nodes(&self) -> usize {
        self.trie.len() - self.free_trie.len()
    }

    /// Number of DFA states, or `None` when running in NFA fallback mode.
    pub fn dfa_states(&self) -> Option<usize> {
        match &self.exec {
            Exec::Dfa { states, .. } => Some(states.len()),
            Exec::Nfa => None,
        }
    }

    /// Number of DFA states carrying a dense transition row (0 in NFA mode or
    /// under [`DfaEncoding::Sparse`]).
    pub fn dense_states(&self) -> usize {
        match &self.exec {
            Exec::Dfa { states, .. } => states.iter().filter(|s| s.dense_row != NONE).count(),
            Exec::Nfa => 0,
        }
    }

    /// The transition encoding this snapshot was compiled with.
    pub fn encoding(&self) -> DfaEncoding {
        self.encoding
    }

    /// Number of distinct interned const tokens.
    pub fn interned_symbols(&self) -> usize {
        self.interner.len()
    }

    /// Width of a dense transition row: one past the highest symbol id.
    /// Tracks [`interned_symbols`](CompiledMatcher::interned_symbols) closely
    /// because `refreshed` compacts the id range under fragmentation.
    pub fn symbol_range(&self) -> usize {
        self.interner.symbol_range()
    }

    /// True when subset construction hit the cap and matching runs by NFA
    /// active-set simulation.
    pub fn uses_nfa_fallback(&self) -> bool {
        matches!(self.exec, Exec::Nfa)
    }

    // -- construction ------------------------------------------------------

    /// Bring trie + templates + ranks in sync with `model`'s live set.
    fn reconcile(&mut self, model: &ParserModel) {
        // Refresh ranks first: matching priority may change even when no
        // template text does (saturation updates reorder the match order).
        self.ranks = vec![NONE; model.nodes.len()];
        for (rank, &id) in model.match_order().iter().enumerate() {
            self.ranks[id.0] = rank as u32;
        }

        // Remove templates that are gone (retired) or rewritten (delta patched
        // the template text, e.g. new wildcard positions after absorption).
        let stale: Vec<usize> = self
            .templates
            .keys()
            .copied()
            .filter(|&id| {
                model
                    .nodes
                    .get(id)
                    .map(|node| node.retired || !self.template_unchanged(id, &node.template))
                    .unwrap_or(true)
            })
            .collect();
        for id in stale {
            self.remove_template(id);
        }

        // Insert live templates not yet present.
        for node in &model.nodes {
            if !node.retired && !self.templates.contains_key(&node.id.0) {
                self.insert_template(node.id, &node.template);
            }
        }
    }

    fn template_unchanged(&self, id: usize, template: &[TemplateToken]) -> bool {
        let Some(stored) = self.templates.get(&id) else {
            return false;
        };
        stored.len() == template.len()
            && stored
                .iter()
                .zip(template)
                .all(|(sym, tok)| match (sym, tok) {
                    (TplSym::Wildcard, TemplateToken::Wildcard) => true,
                    (TplSym::Const(s), TemplateToken::Const(c)) => self.interner.text(*s) == &**c,
                    _ => false,
                })
    }

    fn alloc_trie_node(&mut self) -> u32 {
        match self.free_trie.pop() {
            Some(slot) => {
                self.trie[slot as usize] = TrieNode::fresh();
                slot
            }
            None => {
                self.trie.push(TrieNode::fresh());
                (self.trie.len() - 1) as u32
            }
        }
    }

    fn insert_template(&mut self, id: NodeId, template: &[TemplateToken]) {
        let mut seq = Vec::with_capacity(template.len());
        let mut at = TRIE_ROOT;
        for token in template {
            let (sym, existing) = match token {
                TemplateToken::Wildcard => (TplSym::Wildcard, {
                    let w = self.trie[at as usize].wildcard;
                    (w != NONE).then_some(w)
                }),
                TemplateToken::Const(text) => {
                    let s = self.interner.intern(text);
                    (TplSym::Const(s), self.trie[at as usize].child(s))
                }
            };
            let next = match existing {
                Some(node) => node,
                None => {
                    let node = self.alloc_trie_node();
                    match sym {
                        TplSym::Wildcard => self.trie[at as usize].wildcard = node,
                        TplSym::Const(s) => {
                            let edges = &mut self.trie[at as usize].edges;
                            let pos = edges.partition_point(|&(e, _)| e < s);
                            edges.insert(pos, (s, node));
                        }
                    }
                    node
                }
            };
            self.trie[next as usize].refs += 1;
            seq.push(sym);
            at = next;
        }
        self.trie[at as usize].accepts.push(id);
        self.templates.insert(id.0, seq);
    }

    fn remove_template(&mut self, id: usize) {
        let seq = self.templates.remove(&id).expect("template present");
        // Walk the path once to find it (children still linked), recording it.
        let mut path = Vec::with_capacity(seq.len());
        let mut at = TRIE_ROOT;
        for &sym in &seq {
            let next = match sym {
                TplSym::Wildcard => self.trie[at as usize].wildcard,
                TplSym::Const(s) => self.trie[at as usize].child(s).expect("edge present"),
            };
            debug_assert_ne!(next, NONE);
            path.push((at, sym, next));
            at = next;
        }
        self.trie[at as usize].accepts.retain(|a| a.0 != id);
        // Unwind: drop one reference per path node; unlink and recycle any
        // node whose count reaches zero (no other template shares its suffix).
        for &(parent, sym, node) in path.iter().rev() {
            self.trie[node as usize].refs -= 1;
            if self.trie[node as usize].refs == 0 {
                debug_assert!(self.trie[node as usize].accepts.is_empty());
                debug_assert!(self.trie[node as usize].edges.is_empty());
                debug_assert_eq!(self.trie[node as usize].wildcard, NONE);
                match sym {
                    TplSym::Wildcard => self.trie[parent as usize].wildcard = NONE,
                    TplSym::Const(s) => {
                        self.trie[parent as usize].edges.retain(|&(e, _)| e != s);
                    }
                }
                self.free_trie.push(node);
            }
            if let TplSym::Const(s) = sym {
                self.interner.release(s);
            }
        }
    }

    /// Winning accept of a set of trie nodes: minimum rank, i.e. the template
    /// the linear scan over `match_order` would hit first.
    fn best_accept(&self, members: &[u32]) -> Option<NodeId> {
        let mut best: Option<(u32, NodeId)> = None;
        for &member in members {
            for &id in &self.trie[member as usize].accepts {
                let rank = self.ranks.get(id.0).copied().unwrap_or(NONE);
                debug_assert_ne!(rank, NONE, "accept for non-live template");
                if best.map(|(r, _)| rank < r).unwrap_or(true) {
                    best = Some((rank, id));
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// Subset construction over the trie. DFA state = sorted set of trie
    /// nodes; identical sets are hash-consed so shared suffixes collapse into
    /// shared DFA tails.
    fn determinize(&mut self) {
        let mut states: Vec<DfaState> = Vec::new();
        let mut members_of: Vec<Box<[u32]>> = Vec::new();
        let mut index: FnvMap<Box<[u32]>, u32> = FnvMap::default();

        let start: Box<[u32]> = vec![TRIE_ROOT].into_boxed_slice();
        index.insert(start.clone(), 0);
        members_of.push(start);
        states.push(DfaState::new());

        let mut next_state = 0usize;
        while next_state < states.len() {
            if states.len() > self.max_dfa_states {
                self.exec = Exec::Nfa;
                return;
            }
            let members = members_of[next_state].clone();

            // Wildcard-only successors form the default transition.
            let mut default_set: Vec<u32> = members
                .iter()
                .map(|&m| self.trie[m as usize].wildcard)
                .filter(|&w| w != NONE)
                .collect();
            default_set.sort_unstable();
            default_set.dedup();

            // One transition per const symbol present at any member; a token
            // equal to that symbol also follows every wildcard edge.
            let mut symbols: Vec<u32> = members
                .iter()
                .flat_map(|&m| self.trie[m as usize].edges.iter().map(|&(s, _)| s))
                .collect();
            symbols.sort_unstable();
            symbols.dedup();

            let mut edges = Vec::with_capacity(symbols.len());
            for sym in symbols {
                let mut target: Vec<u32> = default_set.clone();
                for &m in members.iter() {
                    if let Some(child) = self.trie[m as usize].child(sym) {
                        target.push(child);
                    }
                }
                target.sort_unstable();
                target.dedup();
                let state = self.intern_state(target, &mut states, &mut members_of, &mut index);
                edges.push((sym, state));
            }

            let default = if default_set.is_empty() {
                NONE
            } else {
                self.intern_state(default_set, &mut states, &mut members_of, &mut index)
            };

            states[next_state].edges = edges;
            states[next_state].default = default;
            states[next_state].accept = self.best_accept(&members_of[next_state]);
            next_state += 1;
        }
        let dense = self.build_dense_rows(&mut states);
        self.exec = Exec::Dfa { states, dense };
    }

    /// Lay out dense transition rows for hot states according to the snapshot
    /// encoding. Rows are granted widest-state-first (deterministic tiebreak
    /// on state index) until [`DENSE_BUDGET_ENTRIES`] is exhausted; each row
    /// is pre-filled with the state's default so the hot-path transition for
    /// an interned symbol is a single indexed load.
    fn build_dense_rows(&self, states: &mut [DfaState]) -> Vec<u32> {
        let sym_range = self.interner.symbol_range();
        let threshold = match self.encoding {
            DfaEncoding::Sparse => return Vec::new(),
            DfaEncoding::Dense => 1,
            DfaEncoding::Hybrid => DENSE_EDGE_THRESHOLD,
        };
        if sym_range == 0 {
            return Vec::new();
        }
        let mut hot: Vec<(usize, usize)> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.edges.len() >= threshold)
            .map(|(idx, s)| (s.edges.len(), idx))
            .collect();
        hot.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut dense = Vec::new();
        for (_, idx) in hot {
            if dense.len() + sym_range > DENSE_BUDGET_ENTRIES {
                break;
            }
            let state = &mut states[idx];
            let row = dense.len();
            state.dense_row = row as u32;
            dense.resize(row + sym_range, state.default);
            for &(sym, target) in &state.edges {
                dense[row + sym as usize] = target;
            }
        }
        dense
    }

    fn intern_state(
        &self,
        set: Vec<u32>,
        states: &mut Vec<DfaState>,
        members_of: &mut Vec<Box<[u32]>>,
        index: &mut FnvMap<Box<[u32]>, u32>,
    ) -> u32 {
        let key: Box<[u32]> = set.into_boxed_slice();
        if let Some(&state) = index.get(&key) {
            return state;
        }
        let state = states.len() as u32;
        index.insert(key.clone(), state);
        members_of.push(key);
        states.push(DfaState::new());
        state
    }

    // -- matching ----------------------------------------------------------

    /// Match a token stream; `tokens` yields each masked token once, in order.
    fn match_symbols<'a, I: Iterator<Item = &'a str>>(&self, tokens: I) -> Option<NodeId> {
        match &self.exec {
            Exec::Dfa { states, dense } => {
                let mut at = 0u32;
                for token in tokens {
                    let state = &states[at as usize];
                    let next = match self.symbols.lookup(token, &self.interner) {
                        Some(sym) => {
                            if state.dense_row != NONE {
                                dense[state.dense_row as usize + sym as usize]
                            } else {
                                state
                                    .edges
                                    .binary_search_by_key(&sym, |&(s, _)| s)
                                    .map(|pos| state.edges[pos].1)
                                    .unwrap_or(state.default)
                            }
                        }
                        None => state.default,
                    };
                    if next == NONE {
                        return None;
                    }
                    at = next;
                }
                states[at as usize].accept
            }
            Exec::Nfa => {
                let mut active: Vec<u32> = vec![TRIE_ROOT];
                let mut next: Vec<u32> = Vec::new();
                for token in tokens {
                    let sym = self.symbols.lookup(token, &self.interner);
                    next.clear();
                    for &node in &active {
                        let trie_node = &self.trie[node as usize];
                        if let Some(child) = sym.and_then(|s| trie_node.child(s)) {
                            next.push(child);
                        }
                        if trie_node.wildcard != NONE {
                            next.push(trie_node.wildcard);
                        }
                    }
                    next.sort_unstable();
                    next.dedup();
                    std::mem::swap(&mut active, &mut next);
                    if active.is_empty() {
                        return None;
                    }
                }
                self.best_accept(&active)
            }
        }
    }

    /// Match a preprocessed [`TokenView`] (the zero-copy streaming path).
    pub fn match_view(&self, view: &TokenView<'_>) -> Option<NodeId> {
        self.match_symbols(view.iter())
    }

    /// Match owned tokens (the batch/maintenance path).
    pub fn match_tokens(&self, tokens: &[String]) -> Option<NodeId> {
        self.match_symbols(tokens.iter().map(|t| t.as_str()))
    }

    // -- equivalence -------------------------------------------------------

    /// Canonical description of the compiled template set: a deterministic
    /// trie traversal with edges ordered by token text and accepts ordered by
    /// rank, independent of insertion/removal history and node numbering. Two
    /// matchers with equal canonical forms and equal rank tables are
    /// behaviorally identical (the DFA is a pure function of both). The
    /// property suite uses this to prove patched ≡ recompiled.
    pub fn canonical_form(&self) -> String {
        let mut out = String::new();
        self.canonical_node(TRIE_ROOT, &mut String::new(), &mut out);
        out
    }

    fn canonical_node(&self, node: u32, prefix: &mut String, out: &mut String) {
        let trie_node = &self.trie[node as usize];
        if !trie_node.accepts.is_empty() {
            let mut accepts: Vec<(u32, usize)> = trie_node
                .accepts
                .iter()
                .map(|id| (self.ranks.get(id.0).copied().unwrap_or(NONE), id.0))
                .collect();
            accepts.sort_unstable();
            out.push_str(prefix);
            out.push_str(" => ");
            for (rank, id) in accepts {
                out.push_str(&format!("[rank {rank} node {id}]"));
            }
            out.push('\n');
        }
        let mut edges: Vec<(&str, u32)> = trie_node
            .edges
            .iter()
            .map(|&(sym, child)| (self.interner.text(sym), child))
            .collect();
        edges.sort_unstable();
        for (text, child) in edges {
            let saved = prefix.len();
            prefix.push(' ');
            prefix.push_str(text);
            self.canonical_node(child, prefix, out);
            prefix.truncate(saved);
        }
        if trie_node.wildcard != NONE {
            let saved = prefix.len();
            prefix.push_str(" <*>");
            self.canonical_node(trie_node.wildcard, prefix, out);
            prefix.truncate(saved);
        }
    }
}

impl Matcher for CompiledMatcher {
    fn match_view(&self, view: &TokenView<'_>) -> Option<NodeId> {
        CompiledMatcher::match_view(self, view)
    }

    fn match_tokens(&self, tokens: &[String]) -> Option<NodeId> {
        CompiledMatcher::match_tokens(self, tokens)
    }
}

// ---------------------------------------------------------------------------
// Match cache
// ---------------------------------------------------------------------------

/// Keyed LRU cache over raw record lines. Log streams are dominated by a small
/// set of exact-duplicate lines; a hit skips preprocessing and matching
/// entirely. Implemented as a segmented (two-generation) LRU — constant-time
/// probe/insert, bounded at `2 × capacity` entries — and owned per worker
/// thread, so the hot path takes no lock. Entries are tagged with the compiled
/// snapshot's generation and the whole cache is dropped on a snapshot swap.
///
/// Keys are precomputed 64-bit FNV line hashes ([`logtok::hash_line`]): the
/// stream layer hashes each record once at shard admission and carries the
/// hash through the job, so a cache probe re-hashes 8 bytes instead of the
/// whole line. Each entry stores the full line and verifies it on a hit, so a
/// hash collision degrades to a miss — results stay byte-identical.
#[derive(Debug)]
pub struct MatchCache {
    capacity: usize,
    generation: u64,
    current: FnvMap<u64, CacheEntry>,
    previous: FnvMap<u64, CacheEntry>,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    line: Box<str>,
    node: Option<NodeId>,
}

/// Default per-worker cache capacity (segment size).
pub const DEFAULT_MATCH_CACHE_CAPACITY: usize = 4_096;

impl Default for MatchCache {
    fn default() -> Self {
        Self::new(DEFAULT_MATCH_CACHE_CAPACITY)
    }
}

impl MatchCache {
    /// Cache holding up to `2 × capacity` lines.
    pub fn new(capacity: usize) -> Self {
        MatchCache {
            capacity: capacity.max(1),
            generation: 0,
            current: FnvMap::default(),
            previous: FnvMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Match `record` through the cache, hashing the line first. Prefer
    /// [`match_record_hashed`](MatchCache::match_record_hashed) when the
    /// caller already carries the record's line hash.
    pub fn match_record(
        &mut self,
        compiled: &CompiledMatcher,
        preprocessor: &Preprocessor,
        scratch: &mut TokenScratch,
        record: &str,
    ) -> Option<NodeId> {
        let line_hash = logtok::hash_line(record);
        self.match_record_hashed(compiled, preprocessor, scratch, record, line_hash)
    }

    /// Match `record` through the cache keyed by its precomputed FNV line
    /// hash: exact-line hits return the stored assignment; misses preprocess
    /// and match via `compiled` and remember the result. A `compiled`
    /// snapshot from a different generation than the cached entries
    /// invalidates the whole cache first.
    pub fn match_record_hashed(
        &mut self,
        compiled: &CompiledMatcher,
        preprocessor: &Preprocessor,
        scratch: &mut TokenScratch,
        record: &str,
        line_hash: u64,
    ) -> Option<NodeId> {
        if self.generation != compiled.generation {
            self.current.clear();
            self.previous.clear();
            self.generation = compiled.generation;
        }
        if let Some(entry) = self.current.get(&line_hash) {
            if &*entry.line == record {
                self.hits += 1;
                return entry.node;
            }
        }
        if let Some(entry) = self.previous.remove(&line_hash) {
            if &*entry.line == record {
                self.hits += 1;
                let node = entry.node;
                self.insert(line_hash, entry);
                return node;
            }
        }
        self.misses += 1;
        let view = preprocessor.token_view(record, scratch);
        let node = compiled.match_view(&view);
        self.insert(
            line_hash,
            CacheEntry {
                line: record.into(),
                node,
            },
        );
        node
    }

    fn insert(&mut self, line_hash: u64, entry: CacheEntry) {
        if self.current.len() >= self.capacity {
            // Rotate segments: the old `current` becomes `previous` (probed,
            // promoted on hit) and the evicted segment is dropped wholesale.
            self.previous = std::mem::take(&mut self.current);
        }
        self.current.insert(line_hash, entry);
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of currently cached lines.
    pub fn len(&self) -> usize {
        self.current.len() + self.previous.len()
    }

    /// True when no lines are cached.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty() && self.previous.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::matcher::{match_tokens, match_view};
    use crate::train::train;
    use logtok::Preprocessor;

    fn corpus() -> Vec<String> {
        let mut records = Vec::new();
        for i in 0..60 {
            records.push(format!(
                "Accepted password for user{} from 10.0.0.{} port 22",
                i % 5,
                i % 9
            ));
            records.push(format!(
                "Failed password for user{} from 10.0.0.{} port 22",
                i % 5,
                i % 9
            ));
            records.push(format!("Connection closed by 10.0.0.{}", i % 9));
            records.push(format!("block blk_{} replicated to node{}", i, i % 4));
        }
        records
    }

    fn trained() -> (ParserModel, Preprocessor) {
        let config = TrainConfig::default();
        let outcome = train(&corpus(), &config);
        (outcome.model, Preprocessor::new(config.preprocess.clone()))
    }

    fn probes() -> Vec<String> {
        vec![
            "Accepted password for userX from 10.0.0.200 port 22".into(),
            "Failed password for user1 from 10.0.0.3 port 22".into(),
            "Connection closed by 10.0.0.77".into(),
            "block blk_999 replicated to node9".into(),
            "block blk_999 deleted from node9".into(),
            "totally novel statement never seen".into(),
            "".into(),
        ]
    }

    fn assert_agrees(model: &ParserModel, compiled: &CompiledMatcher, pre: &Preprocessor) {
        let mut scratch = TokenScratch::new();
        for line in corpus().iter().chain(probes().iter()) {
            let view = pre.token_view(line, &mut scratch);
            assert_eq!(
                compiled.match_view(&view),
                match_view(model, &view),
                "automaton diverged from tree walk on {line:?}"
            );
        }
    }

    #[test]
    fn compiled_matches_agree_with_tree_walk() {
        let (model, pre) = trained();
        let compiled = CompiledMatcher::compile(&model);
        assert!(!compiled.uses_nfa_fallback());
        assert_agrees(&model, &compiled, &pre);
    }

    #[test]
    fn nfa_fallback_agrees_with_tree_walk() {
        let (model, pre) = trained();
        let compiled = CompiledMatcher::compile_with_limit(&model, 2);
        assert!(compiled.uses_nfa_fallback());
        assert_eq!(compiled.dfa_states(), None);
        assert_agrees(&model, &compiled, &pre);
    }

    #[test]
    fn empty_model_matches_nothing() {
        let model = ParserModel::new();
        let compiled = CompiledMatcher::compile(&model);
        assert_eq!(compiled.match_tokens(&["anything".into()]), None);
        assert_eq!(compiled.match_tokens(&[]), None);
        assert_eq!(compiled.live_templates(), 0);
    }

    #[test]
    fn temporary_templates_are_compiled_in_and_retirement_prunes_them() {
        let (mut model, _) = trained();
        let compiled = CompiledMatcher::compile(&model);
        let before = compiled.canonical_form();
        let tokens: Vec<String> = vec!["gamma".into(), "ray".into(), "burst".into()];
        let id = model.insert_temporary(&tokens);
        let with_temp = compiled.refreshed(&model);
        assert_eq!(with_temp.match_tokens(&tokens), Some(id));
        assert_eq!(with_temp.live_templates(), compiled.live_templates() + 1);
        model.retire(id);
        model.rebuild_match_order();
        let pruned = with_temp.refreshed(&model);
        assert_eq!(pruned.match_tokens(&tokens), None);
        // Structural GC: pruning the only template through those nodes returns
        // the trie (and interner) to its pre-insertion shape.
        assert_eq!(pruned.canonical_form(), before);
        assert_eq!(pruned.trie_nodes(), compiled.trie_nodes());
        assert_eq!(pruned.interned_symbols(), compiled.interned_symbols());
    }

    #[test]
    fn refreshed_equals_scratch_compile() {
        let (mut model, _) = trained();
        let compiled = CompiledMatcher::compile(&model);
        model.insert_temporary(&["one".into(), "off".into()]);
        let id = model.insert_temporary(&["another".into(), "one".into()]);
        model.retire(id);
        model.rebuild_match_order();
        let patched = compiled.refreshed(&model);
        let scratch = CompiledMatcher::compile(&model);
        assert_eq!(patched.canonical_form(), scratch.canonical_form());
    }

    #[test]
    fn generation_is_unique_per_snapshot() {
        let (model, _) = trained();
        let a = CompiledMatcher::compile(&model);
        let b = CompiledMatcher::compile(&model);
        let c = a.refreshed(&model);
        assert_ne!(a.generation(), b.generation());
        assert_ne!(a.generation(), c.generation());
        assert_ne!(b.generation(), c.generation());
    }

    #[test]
    fn most_precise_template_wins_in_dfa_accepts() {
        // Two templates match "x y": the exact one must win over the wildcard
        // one, mirroring the match-order scan.
        let mut model = ParserModel::new();
        use crate::tree::{TemplateToken as T, TreeNode};
        let mk = |template: Vec<T>, saturation: f64, depth: usize| TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template,
            saturation,
            depth,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        };
        let coarse = model.push_node(mk(vec![T::Const("x".into()), T::Wildcard], 0.4, 0));
        let precise = model.push_node(mk(vec![T::Const("x".into()), T::Const("y".into())], 1.0, 1));
        model.add_root(coarse);
        model.rebuild_match_order();
        let compiled = CompiledMatcher::compile(&model);
        assert_eq!(
            compiled.match_tokens(&["x".into(), "y".into()]),
            Some(precise)
        );
        assert_eq!(
            compiled.match_tokens(&["x".into(), "z".into()]),
            Some(coarse)
        );
        assert_eq!(compiled.match_tokens(&["x".into()]), None);
        assert_eq!(
            compiled.match_tokens(&["x".into(), "y".into(), "z".into()]),
            None
        );
        // Sanity: identical to the linear scan.
        assert_eq!(
            compiled.match_tokens(&["x".into(), "y".into()]),
            match_tokens(&model, &["x".into(), "y".into()])
        );
    }

    #[test]
    fn empty_template_accepts_empty_token_stream() {
        let mut model = ParserModel::new();
        let id = model.insert_temporary(&[]);
        let compiled = CompiledMatcher::compile(&model);
        assert_eq!(compiled.match_tokens(&[]), Some(id));
        assert_eq!(compiled.match_tokens(&["x".into()]), None);
    }

    #[test]
    fn match_cache_hits_agree_with_misses_and_invalidate_on_swap() {
        let (mut model, pre) = trained();
        let compiled = CompiledMatcher::compile(&model);
        let mut cache = MatchCache::new(8);
        let mut scratch = TokenScratch::new();
        let line = "Accepted password for user1 from 10.0.0.2 port 22";
        let miss = cache.match_record(&compiled, &pre, &mut scratch, line);
        let hit = cache.match_record(&compiled, &pre, &mut scratch, line);
        assert_eq!(miss, hit);
        assert_eq!(cache.stats(), (1, 1));
        assert!(miss.is_some());

        // A new snapshot invalidates every cached line.
        let id = model.insert_temporary(&["fresh".into(), "template".into()]);
        let swapped = compiled.refreshed(&model);
        let after = cache.match_record(&swapped, &pre, &mut scratch, line);
        assert_eq!(after, miss);
        assert_eq!(cache.stats(), (1, 2), "generation change must re-match");
        let _ = id;
    }

    #[test]
    fn match_cache_capacity_is_bounded() {
        let (model, pre) = trained();
        let compiled = CompiledMatcher::compile(&model);
        let mut cache = MatchCache::new(4);
        let mut scratch = TokenScratch::new();
        for i in 0..100 {
            let line = format!("Connection closed by 10.0.0.{i}");
            cache.match_record(&compiled, &pre, &mut scratch, &line);
        }
        assert!(cache.len() <= 8, "segmented cache exceeded 2x capacity");
        assert!(!cache.is_empty());
    }

    #[test]
    fn structural_sharing_collapses_shared_suffixes_in_dfa() {
        let (model, _) = trained();
        let compiled = CompiledMatcher::compile(&model);
        // The DFA must stay small relative to total template tokens: shared
        // prefixes share trie paths, and hash-consed state sets share tails.
        let total_tokens: usize = model
            .nodes
            .iter()
            .filter(|n| !n.retired)
            .map(|n| n.template.len() + 1)
            .sum();
        let states = compiled.dfa_states().expect("DFA mode");
        assert!(
            states <= total_tokens,
            "no sharing: {states} states for {total_tokens} template tokens"
        );
    }
}
