//! The clustering tree: nodes, templates and saturation metadata (§3 "Offline Training",
//! §4.3).
//!
//! Every node represents a log template. Children are strictly more precise (higher
//! saturation) than their parent, so a user-supplied saturation threshold selects, for any
//! matched leaf, a unique coarsest ancestor that still satisfies the threshold. Nodes only
//! store what the online phase needs — template text, saturation, parent/child links and
//! counts — not per-node token statistics (the storage optimisation behind §4.8).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within a clustering tree / [`ParserModel`](crate::model::ParserModel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One token position of a template: either a constant token or a wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateToken {
    /// The position holds this exact token in every member log.
    Const(String),
    /// The position is a variable.
    Wildcard,
}

impl TemplateToken {
    /// True for [`TemplateToken::Wildcard`].
    pub fn is_wildcard(&self) -> bool {
        matches!(self, TemplateToken::Wildcard)
    }
}

impl fmt::Display for TemplateToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateToken::Const(t) => write!(f, "{t}"),
            TemplateToken::Wildcard => write!(f, "*"),
        }
    }
}

/// A node of the clustering tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeNode {
    /// This node's id.
    pub id: NodeId,
    /// Parent node, `None` for the root of an initial group.
    pub parent: Option<NodeId>,
    /// Child nodes (more precise templates).
    pub children: Vec<NodeId>,
    /// The template: one entry per token position.
    pub template: Vec<TemplateToken>,
    /// Saturation score of the node (strictly increases from parent to child).
    pub saturation: f64,
    /// Tree depth (roots are depth 0).
    pub depth: usize,
    /// Number of raw training records covered by this node.
    pub log_count: u64,
    /// Number of distinct (deduplicated) training logs covered by this node.
    pub unique_count: u64,
    /// True when the node was inserted by the online matcher for an unmatched log and has
    /// not yet been absorbed by a training cycle (§3 "Online Matching").
    pub temporary: bool,
    /// True when the node has been retired from matching (e.g. a temporary template
    /// absorbed by incremental maintenance). Retired nodes keep their slot so existing
    /// [`NodeId`]s stay valid — stored records never need re-matching after a delta is
    /// applied — but they are excluded from the match order, the root set and the leaf
    /// iterator.
    pub retired: bool,
}

impl TreeNode {
    /// Number of token positions.
    pub fn len(&self) -> usize {
        self.template.len()
    }

    /// True when the template has no positions.
    pub fn is_empty(&self) -> bool {
        self.template.is_empty()
    }

    /// True when the node has no children (most precise template on its path).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of wildcard positions.
    pub fn wildcard_count(&self) -> usize {
        self.template.iter().filter(|t| t.is_wildcard()).count()
    }

    /// Render the template as a human-readable string (`*` for wildcards), the format the
    /// paper uses in Fig. 1 / Table 4.
    pub fn template_text(&self) -> String {
        let parts: Vec<String> = self.template.iter().map(|t| t.to_string()).collect();
        parts.join(" ")
    }

    /// Position-based match (§4.8): `tokens` matches when it has the same length and every
    /// position equals the template token or the template holds a wildcard.
    pub fn matches_tokens(&self, tokens: &[String]) -> bool {
        if tokens.len() != self.template.len() {
            return false;
        }
        self.template
            .iter()
            .zip(tokens.iter())
            .all(|(t, token)| match t {
                TemplateToken::Wildcard => true,
                TemplateToken::Const(c) => c == token,
            })
    }

    /// Borrow-based variant of [`TreeNode::matches_tokens`] for the zero-copy matching
    /// path: compares against a [`logtok::TokenView`] without materialising owned token
    /// strings.
    pub fn matches_view(&self, view: &logtok::TokenView<'_>) -> bool {
        if view.len() != self.template.len() {
            return false;
        }
        self.template
            .iter()
            .zip(view.iter())
            .all(|(t, token)| match t {
                TemplateToken::Wildcard => true,
                TemplateToken::Const(c) => c == token,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(template: &[&str]) -> TreeNode {
        TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: template
                .iter()
                .map(|t| {
                    if *t == "*" {
                        TemplateToken::Wildcard
                    } else {
                        TemplateToken::Const(t.to_string())
                    }
                })
                .collect(),
            saturation: 1.0,
            depth: 0,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        }
    }

    fn tokens(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn template_text_renders_wildcards() {
        let n = node(&["release", "lock", "*", "flg", "*"]);
        assert_eq!(n.template_text(), "release lock * flg *");
        assert_eq!(n.wildcard_count(), 2);
    }

    #[test]
    fn matches_exact_and_wildcard_positions() {
        let n = node(&["acquire", "lock", "*"]);
        assert!(n.matches_tokens(&tokens(&["acquire", "lock", "42"])));
        assert!(n.matches_tokens(&tokens(&["acquire", "lock", "anything"])));
        assert!(!n.matches_tokens(&tokens(&["release", "lock", "42"])));
    }

    #[test]
    fn length_mismatch_never_matches() {
        let n = node(&["a", "*"]);
        assert!(!n.matches_tokens(&tokens(&["a"])));
        assert!(!n.matches_tokens(&tokens(&["a", "b", "c"])));
    }

    #[test]
    fn leaf_and_empty_checks() {
        let n = node(&["x"]);
        assert!(n.is_leaf());
        assert!(!n.is_empty());
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "T7");
    }
}
