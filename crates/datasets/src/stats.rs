//! Dataset statistics (Table 1 reproduction and the Fig. 4 duplication CDF).

use crate::generator::LabeledDataset;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary statistics of a corpus, mirroring the columns of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset family name.
    pub name: String,
    /// Number of log records.
    pub num_logs: usize,
    /// Total size in bytes.
    pub size_bytes: u64,
    /// Number of distinct ground-truth templates that appear.
    pub num_templates: usize,
    /// Number of distinct raw record strings (before any masking).
    pub unique_records: usize,
}

impl DatasetStats {
    /// Compute statistics for a corpus.
    pub fn of(dataset: &LabeledDataset) -> Self {
        let mut unique = HashMap::new();
        for record in &dataset.records {
            *unique.entry(record.as_str()).or_insert(0u64) += 1;
        }
        DatasetStats {
            name: dataset.name.clone(),
            num_logs: dataset.len(),
            size_bytes: dataset.total_bytes(),
            num_templates: dataset.distinct_templates_used(),
            unique_records: unique.len(),
        }
    }

    /// Human-readable size (KB / MB / GB), as printed in Table 1.
    pub fn size_human(&self) -> String {
        let bytes = self.size_bytes as f64;
        if bytes >= 1024.0 * 1024.0 * 1024.0 {
            format!("{:.2} GB", bytes / (1024.0 * 1024.0 * 1024.0))
        } else if bytes >= 1024.0 * 1024.0 {
            format!("{:.2} MB", bytes / (1024.0 * 1024.0))
        } else {
            format!("{:.2} KB", bytes / 1024.0)
        }
    }
}

/// The per-unique-record occurrence counts of a corpus, optionally after applying a
/// masking function; used to draw the Fig. 4 duplication CDFs.
pub fn duplication_counts<F>(records: &[String], transform: F) -> Vec<u64>
where
    F: Fn(&str) -> String,
{
    let mut counts: HashMap<String, u64> = HashMap::new();
    for r in records {
        *counts.entry(transform(r)).or_insert(0) += 1;
    }
    let mut v: Vec<u64> = counts.into_values().collect();
    v.sort_unstable();
    v
}

/// Empirical CDF over a sorted vector of counts: returns (count, fraction ≤ count) pairs.
pub fn empirical_cdf(sorted_counts: &[u64]) -> Vec<(u64, f64)> {
    let n = sorted_counts.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, &c) in sorted_counts.iter().enumerate() {
        if i + 1 == n || sorted_counts[i + 1] != c {
            out.push((c, (i + 1) as f64 / n as f64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::LabeledDataset;

    #[test]
    fn stats_of_generated_corpus() {
        let ds = LabeledDataset::loghub("Apache");
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.num_logs, 2_000);
        assert!(stats.num_templates <= 6);
        assert!(stats.unique_records <= stats.num_logs);
        assert!(stats.size_bytes > 0);
    }

    #[test]
    fn size_human_formats_units() {
        let mut stats = DatasetStats {
            name: "X".into(),
            num_logs: 0,
            size_bytes: 2_048,
            num_templates: 0,
            unique_records: 0,
        };
        assert_eq!(stats.size_human(), "2.00 KB");
        stats.size_bytes = 3 * 1024 * 1024;
        assert_eq!(stats.size_human(), "3.00 MB");
        stats.size_bytes = 2 * 1024 * 1024 * 1024;
        assert_eq!(stats.size_human(), "2.00 GB");
    }

    #[test]
    fn duplication_counts_sum_to_total() {
        let records: Vec<String> = vec!["a", "b", "a", "a", "c", "b"]
            .into_iter()
            .map(String::from)
            .collect();
        let counts = duplication_counts(&records, |s| s.to_string());
        assert_eq!(counts.iter().sum::<u64>(), 6);
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn masking_increases_duplication() {
        let records: Vec<String> = (0..100).map(|i| format!("request {} done", i)).collect();
        let raw = duplication_counts(&records, |s| s.to_string());
        let masked = duplication_counts(&records, |s| {
            s.split_whitespace()
                .map(|t| {
                    if t.chars().all(|c| c.is_ascii_digit()) {
                        "<*>"
                    } else {
                        t
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        });
        assert_eq!(raw.len(), 100);
        assert_eq!(masked.len(), 1);
        assert_eq!(masked[0], 100);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let counts = vec![1, 1, 2, 3, 3, 3, 10];
        let cdf = empirical_cdf(&counts);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(empirical_cdf(&[]).is_empty());
    }
}
