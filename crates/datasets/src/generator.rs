//! Labeled log generation from a dataset family's template pool.

use crate::catalog::{build_templates, dataset_spec};
use crate::template::{Segment, TemplateSpec};
use crate::variables::{render_value, VariablePools};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of one generation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Dataset family name (must exist in the catalog).
    pub dataset: String,
    /// Number of log records to generate.
    pub num_logs: usize,
    /// Number of templates in the pool. `None` selects the LogHub count from Table 1.
    pub num_templates: Option<usize>,
    /// Zipf exponent for template frequencies. `None` uses the catalog default.
    pub zipf_exponent: Option<f64>,
    /// RNG seed: the same configuration always produces the same corpus.
    pub seed: u64,
    /// Number of distinct hosts/users (controls exact-duplicate rate).
    pub small_pool: usize,
    /// Number of distinct ids (blocks, UUIDs, hex ids).
    pub id_pool: usize,
}

impl GeneratorConfig {
    /// LogHub-style configuration: 2,000 logs with the Table 1 LogHub template count.
    pub fn loghub(dataset: &str) -> Self {
        GeneratorConfig {
            dataset: dataset.to_string(),
            num_logs: 2_000,
            num_templates: None,
            zipf_exponent: None,
            seed: 0x0B17_EB41,
            small_pool: 40,
            id_pool: 500,
        }
    }

    /// LogHub-2.0-style configuration: `num_logs` records with the LogHub-2.0 template
    /// count (scaled down proportionally when the family has thousands of templates and
    /// `num_logs` is small, so that every template can realistically appear).
    pub fn loghub2(dataset: &str, num_logs: usize) -> Self {
        let spec = dataset_spec(dataset);
        let full_templates = spec
            .as_ref()
            .and_then(|s| s.loghub2_templates)
            .unwrap_or(50);
        // Keep roughly >= 20 expected logs per template.
        let max_supported = (num_logs / 20).max(10);
        let num_templates = full_templates.min(max_supported);
        GeneratorConfig {
            dataset: dataset.to_string(),
            num_logs,
            num_templates: Some(num_templates),
            zipf_exponent: None,
            seed: 0x0B17_EB42,
            small_pool: 60,
            id_pool: 5_000,
        }
    }

    /// Override the seed, keeping everything else.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated corpus: raw records plus exact ground truth.
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// Dataset family name.
    pub name: String,
    /// Raw log records (the message content, without timestamp header).
    pub records: Vec<String>,
    /// For every record, the index of the template that produced it.
    pub labels: Vec<usize>,
    /// The ground-truth template pool.
    pub templates: Vec<TemplateSpec>,
}

impl LabeledDataset {
    /// Generate a corpus from `config`.
    ///
    /// # Panics
    /// Panics when the dataset name is unknown; the catalog lists the supported families.
    pub fn generate(config: &GeneratorConfig) -> Self {
        let spec = dataset_spec(&config.dataset)
            .unwrap_or_else(|| panic!("unknown dataset family {:?}", config.dataset));
        let template_count = config.num_templates.unwrap_or(spec.loghub_templates).max(1);
        let templates = build_templates(&config.dataset, template_count);
        let zipf = Zipf::new(
            templates.len(),
            config.zipf_exponent.unwrap_or(spec.zipf_exponent),
        );
        let pools = VariablePools {
            small_pool: config.small_pool,
            id_pool: config.id_pool,
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut records = Vec::with_capacity(config.num_logs);
        let mut labels = Vec::with_capacity(config.num_logs);
        for _ in 0..config.num_logs {
            let template_id = zipf.sample(&mut rng);
            records.push(render_template(&templates[template_id], &mut rng, &pools));
            labels.push(template_id);
        }
        LabeledDataset {
            name: config.dataset.clone(),
            records,
            labels,
            templates,
        }
    }

    /// Convenience: generate the 2,000-line LogHub-style corpus for `dataset`.
    pub fn loghub(dataset: &str) -> Self {
        Self::generate(&GeneratorConfig::loghub(dataset))
    }

    /// Convenience: generate a LogHub-2.0-style corpus with `num_logs` records.
    pub fn loghub2(dataset: &str, num_logs: usize) -> Self {
        Self::generate(&GeneratorConfig::loghub2(dataset, num_logs))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct templates that actually appear in the corpus.
    pub fn distinct_templates_used(&self) -> usize {
        let mut seen = vec![false; self.templates.len()];
        for &l in &self.labels {
            seen[l] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Total size of all records in bytes (for Table 1 / Fig. 10 style reporting).
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len() as u64 + 1).sum()
    }
}

/// Render one record from a template.
fn render_template(template: &TemplateSpec, rng: &mut StdRng, pools: &VariablePools) -> String {
    let mut out = String::with_capacity(64);
    for segment in &template.segments {
        match segment {
            Segment::Const(text) => out.push_str(text),
            Segment::Var(kind) => out.push_str(&render_value(*kind, rng, pools)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_logs() {
        let ds = LabeledDataset::loghub("HDFS");
        assert_eq!(ds.len(), 2_000);
        assert_eq!(ds.labels.len(), 2_000);
        assert_eq!(ds.templates.len(), 14);
    }

    #[test]
    fn labels_are_valid_template_indices() {
        let ds = LabeledDataset::loghub("OpenSSH");
        for &l in &ds.labels {
            assert!(l < ds.templates.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = LabeledDataset::generate(&GeneratorConfig::loghub("Apache"));
        let b = LabeledDataset::generate(&GeneratorConfig::loghub("Apache"));
        assert_eq!(a.records, b.records);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = LabeledDataset::generate(&GeneratorConfig::loghub("Apache"));
        let b = LabeledDataset::generate(&GeneratorConfig::loghub("Apache").with_seed(99));
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn zipf_skew_means_most_templates_rare() {
        let ds = LabeledDataset::loghub("BGL");
        let mut counts = vec![0usize; ds.templates.len()];
        for &l in &ds.labels {
            counts[l] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > ds.len() / 10, "the head template should dominate");
    }

    #[test]
    fn records_match_their_template_structure() {
        let ds = LabeledDataset::loghub("HDFS");
        for (record, &label) in ds.records.iter().zip(&ds.labels).take(200) {
            let template = &ds.templates[label];
            // Every constant segment of the template must appear, in order, in the record.
            let mut cursor = 0usize;
            for seg in &template.segments {
                if let Segment::Const(text) = seg {
                    let found = record[cursor..]
                        .find(text.as_str())
                        .unwrap_or_else(|| panic!("segment {text:?} missing from {record:?}"));
                    cursor += found + text.len();
                }
            }
        }
    }

    #[test]
    fn loghub2_scales_template_count_to_corpus_size() {
        let small = GeneratorConfig::loghub2("Thunderbird", 2_000);
        assert!(small.num_templates.unwrap() <= 100);
        let large = GeneratorConfig::loghub2("Thunderbird", 100_000);
        assert!(large.num_templates.unwrap() > small.num_templates.unwrap());
    }

    #[test]
    fn corpus_contains_exact_duplicates() {
        // The duplication property Fig. 4 relies on.
        let ds = LabeledDataset::loghub2("Apache", 5_000);
        let mut set = std::collections::HashSet::new();
        let mut dups = 0usize;
        for r in &ds.records {
            if !set.insert(r.clone()) {
                dups += 1;
            }
        }
        assert!(dups > 100, "expected many exact duplicates, got {dups}");
    }

    #[test]
    #[should_panic(expected = "unknown dataset family")]
    fn unknown_dataset_panics() {
        LabeledDataset::loghub("NoSuchFamily");
    }

    #[test]
    fn total_bytes_positive() {
        let ds = LabeledDataset::loghub("Proxifier");
        assert!(ds.total_bytes() > 10_000);
        assert!(ds.distinct_templates_used() >= 4);
    }
}
