//! Zipf-distributed sampling of template indices.
//!
//! Real log streams are extremely skewed: a handful of templates account for the vast
//! majority of records while most templates are rare (this is what makes the strict
//! Grouping Accuracy metric meaningful, §5.1.3). The generator therefore samples template
//! ids from a Zipf distribution with configurable exponent.

use rand::rngs::StdRng;
use rand::Rng;

/// A pre-computed Zipf sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, length `n`.
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` items with exponent `s` (s = 0 is uniform; larger s is
    /// more skewed; real log corpora are typically well described by s ≈ 1.0–1.5).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs at least one item");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift: the last entry must be exactly 1.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf {
            cumulative: weights,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the distribution is over zero items (never true; see `new`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample one index in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // Binary search for the first cumulative weight >= u.
        match self
            .cumulative
            .binary_search_by(|w| w.partial_cmp(&u).expect("no NaN in cumulative weights"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Expected probability of item `i` (for tests and analytics).
    pub fn probability(&self, i: usize) -> f64 {
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_makes_first_item_dominant() {
        let z = Zipf::new(50, 1.5);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(0) > 0.2);
        assert!(z.probability(49) < 0.01);
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.probability(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_cover_the_range_and_respect_skew() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts.iter().all(|&c| c < 20_000));
        assert!(counts[0] > 3_000);
    }

    #[test]
    fn single_item_always_sampled() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        Zipf::new(0, 1.0);
    }
}
