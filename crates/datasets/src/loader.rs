//! Loader for genuine LogHub `*_structured.csv` files.
//!
//! When the real corpora are available (placed under `data/<Dataset>/`), every experiment
//! can be run against them instead of the synthetic generators. The structured CSV format
//! used by the LogHub benchmark has a header row and, per log line, a `Content` column
//! (the raw message) and an `EventId`/`EventTemplate` column (the ground-truth template).

use crate::generator::LabeledDataset;
use crate::template::TemplateSpec;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;

/// Load a LogHub structured CSV into a [`LabeledDataset`].
///
/// Only the `Content` and `EventId` (or `EventTemplate`) columns are used. Lines that fail
/// to parse are skipped; an error is returned only when the file cannot be read or has no
/// usable header.
pub fn load_structured_csv(name: &str, path: &Path) -> io::Result<LabeledDataset> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV file"))?;
    let columns = parse_csv_line(header);
    let content_idx = find_column(&columns, &["Content"])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "CSV has no Content column"))?;
    let template_idx = find_column(&columns, &["EventTemplate", "EventId"]).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "CSV has no EventTemplate or EventId column",
        )
    })?;

    let mut records = Vec::new();
    let mut labels = Vec::new();
    let mut template_ids: HashMap<String, usize> = HashMap::new();
    let mut templates: Vec<TemplateSpec> = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_csv_line(line);
        let (Some(content), Some(template)) = (fields.get(content_idx), fields.get(template_idx))
        else {
            continue;
        };
        let next_id = template_ids.len();
        let id = *template_ids.entry(template.clone()).or_insert(next_id);
        if id == templates.len() {
            // New template: store its text verbatim as a constant-only spec (the loader
            // does not try to infer variable kinds — ground truth is used only for
            // grouping accuracy, which needs the label, not the slot types).
            templates.push(TemplateSpec {
                id,
                segments: vec![crate::template::Segment::Const(template.clone())],
            });
        }
        records.push(content.clone());
        labels.push(id);
    }
    Ok(LabeledDataset {
        name: name.to_string(),
        records,
        labels,
        templates,
    })
}

/// Try to locate and load the real corpus for `name` under `data_dir`; fall back to `None`
/// when the file does not exist.
pub fn try_load_real(name: &str, data_dir: &Path) -> Option<LabeledDataset> {
    let candidates = [
        data_dir
            .join(name)
            .join(format!("{name}_2k.log_structured.csv")),
        data_dir
            .join(name)
            .join(format!("{name}_full.log_structured.csv")),
        data_dir.join(format!("{name}_2k.log_structured.csv")),
    ];
    for path in candidates {
        if path.exists() {
            if let Ok(ds) = load_structured_csv(name, &path) {
                if !ds.is_empty() {
                    return Some(ds);
                }
            }
        }
    }
    None
}

fn find_column(columns: &[String], names: &[&str]) -> Option<usize> {
    for name in names {
        if let Some(idx) = columns.iter().position(|c| c == name) {
            return Some(idx);
        }
    }
    None
}

/// Minimal CSV line parser handling quoted fields with embedded commas and doubled quotes.
fn parse_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    field.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            _ => field.push(c),
        }
    }
    fields.push(field);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp_csv(content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("bytebrain_loader_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("test_{}.csv", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    #[test]
    fn parses_simple_structured_csv() {
        let csv = "LineId,Content,EventId,EventTemplate\n\
                   1,Verification succeeded for blk_1,E1,Verification succeeded for <*>\n\
                   2,Verification succeeded for blk_2,E1,Verification succeeded for <*>\n\
                   3,Deleting block blk_9 file /tmp/x,E2,Deleting block <*> file <*>\n";
        let path = write_temp_csv(csv);
        let ds = load_structured_csv("HDFS", &path).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.templates.len(), 2);
        assert_eq!(ds.labels, vec![0, 0, 1]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn quoted_fields_with_commas() {
        let fields = parse_csv_line(r#"1,"hello, world",E1"#);
        assert_eq!(fields, vec!["1", "hello, world", "E1"]);
    }

    #[test]
    fn doubled_quotes_are_unescaped() {
        let fields = parse_csv_line(r#"1,"say ""hi""",E1"#);
        assert_eq!(fields[1], r#"say "hi""#);
    }

    #[test]
    fn missing_content_column_is_an_error() {
        let path = write_temp_csv("LineId,Message\n1,foo\n");
        assert!(load_structured_csv("X", &path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn try_load_real_missing_returns_none() {
        let missing = std::path::Path::new("/nonexistent/data/dir");
        assert!(try_load_real("HDFS", missing).is_none());
    }
}
