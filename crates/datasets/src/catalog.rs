//! The dataset catalog: one entry per LogHub / LogHub-2.0 family with template-pool
//! construction calibrated to the statistics the paper reports in Table 1.
//!
//! Each family has a set of hand-written *seed templates* capturing the flavour of the
//! real corpus (HDFS block lifecycle, SSH authentication, BGL machine checks, …). Because
//! several families have hundreds of ground-truth templates, the remaining templates are
//! synthesized deterministically from family-specific vocabularies (component × action ×
//! detail) so that the *number* and *structural variety* of templates match Table 1
//! without shipping the original corpora.

use crate::template::TemplateSpec;
use serde::{Deserialize, Serialize};

/// Static description of one dataset family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Family name as used in the paper (e.g. `"HDFS"`).
    pub name: String,
    /// Number of ground-truth templates in the 2,000-line LogHub version.
    pub loghub_templates: usize,
    /// Number of ground-truth templates in LogHub-2.0 (`None` when the family is not part
    /// of LogHub-2.0 — Android and Windows).
    pub loghub2_templates: Option<usize>,
    /// Number of log lines in LogHub-2.0 (Table 1).
    pub loghub2_logs: Option<u64>,
    /// Zipf exponent used by the generator for template frequencies.
    pub zipf_exponent: f64,
}

/// All 16 LogHub families, in the order of Table 1.
pub fn dataset_names() -> Vec<&'static str> {
    vec![
        "HealthApp",
        "OpenStack",
        "OpenSSH",
        "Proxifier",
        "HPC",
        "Zookeeper",
        "Mac",
        "Hadoop",
        "Linux",
        "Android",
        "HDFS",
        "BGL",
        "Windows",
        "Apache",
        "Thunderbird",
        "Spark",
    ]
}

/// The 14 families included in LogHub-2.0 (Table 1 omits Android and Windows).
pub fn loghub2_dataset_names() -> Vec<&'static str> {
    dataset_names()
        .into_iter()
        .filter(|n| *n != "Android" && *n != "Windows")
        .collect()
}

/// Look up the spec for a family by name (case-sensitive, as in the paper's tables).
pub fn dataset_spec(name: &str) -> Option<DatasetSpec> {
    let (loghub_templates, loghub2_templates, loghub2_logs): (usize, Option<usize>, Option<u64>) =
        match name {
            "HealthApp" => (75, Some(156), Some(212_394)),
            "OpenStack" => (43, Some(48), Some(207_632)),
            "OpenSSH" => (27, Some(38), Some(638_947)),
            "Proxifier" => (8, Some(11), Some(21_320)),
            "HPC" => (46, Some(74), Some(429_988)),
            "Zookeeper" => (50, Some(89), Some(74_273)),
            "Mac" => (341, Some(626), Some(100_314)),
            "Hadoop" => (114, Some(236), Some(179_993)),
            "Linux" => (118, Some(338), Some(23_921)),
            "Android" => (166, None, None),
            "HDFS" => (14, Some(46), Some(11_167_740)),
            "BGL" => (120, Some(320), Some(4_631_261)),
            "Windows" => (50, None, None),
            "Apache" => (6, Some(29), Some(51_978)),
            "Thunderbird" => (149, Some(1_241), Some(16_601_745)),
            "Spark" => (36, Some(236), Some(16_075_117)),
            _ => return None,
        };
    Some(DatasetSpec {
        name: name.to_string(),
        loghub_templates,
        loghub2_templates,
        loghub2_logs,
        zipf_exponent: 1.1,
    })
}

/// Hand-written seed templates per family. Placeholders follow
/// [`TemplateSpec::parse`](crate::template::TemplateSpec::parse).
pub fn seed_patterns(name: &str) -> Vec<&'static str> {
    match name {
        "HDFS" => vec![
            "Receiving block <blockid> src /<ipport> dest /<ipport>",
            "Received block <blockid> of size <bigint> from /<ip>",
            "PacketResponder <int> for block <blockid> terminating",
            "Verification succeeded for <blockid>",
            "BLOCK* NameSystem.addStoredBlock blockMap updated <ipport> is added to <blockid> size <bigint>",
            "BLOCK* NameSystem.allocateBlock <path> <blockid>",
            "BLOCK* NameSystem.delete <blockid> is added to invalidSet of <ipport>",
            "Deleting block <blockid> file <path>",
            "BLOCK* ask <ipport> to replicate <blockid> to datanode(s) <ipport>",
            "writeBlock <blockid> received exception <class>",
            "Exception in receiveBlock for block <blockid> <class>",
            "Unexpected error trying to delete block <blockid> BlockInfo not found in volumeMap",
            "Changing block file offset of block <blockid> from <bigint> to <bigint> meta file offset to <bigint>",
            "Starting thread to transfer block <blockid> to <ipport>",
        ],
        "OpenSSH" => vec![
            "Accepted password for <user> from <ip> port <port> ssh2",
            "Failed password for <user> from <ip> port <port> ssh2",
            "Failed password for invalid user <user> from <ip> port <port> ssh2",
            "Connection closed by <ip> [preauth]",
            "Received disconnect from <ip>: <int>: Bye Bye [preauth]",
            "pam_unix(sshd:auth): authentication failure; logname= uid=<int> euid=<int> tty=ssh ruser= rhost=<ip> user=<user>",
            "pam_unix(sshd:session): session opened for user <user> by (uid=<int>)",
            "pam_unix(sshd:session): session closed for user <user>",
            "Invalid user <user> from <ip>",
            "input_userauth_request: invalid user <user> [preauth]",
            "reverse mapping checking getaddrinfo for <host> [<ip>] failed - POSSIBLE BREAK-IN ATTEMPT!",
            "error: Received disconnect from <ip>: <int>: com.jcraft.jsch.JSchException: Auth fail [preauth]",
            "Did not receive identification string from <ip>",
            "subsystem request for sftp by user <user>",
        ],
        "Apache" => vec![
            "jk2_init() Found child <int> in scoreboard slot <int>",
            "workerEnv.init() ok <path>",
            "mod_jk child workerEnv in error state <int>",
            "[client <ip>] Directory index forbidden by rule: <path>",
            "jk2_init() Can't find child <int> in scoreboard",
            "mod_jk child init <int> <int>",
        ],
        "Spark" => vec![
            "Reading broadcast variable <int> took <duration>",
            "Started reading broadcast variable <int>",
            "Block <word> stored as values in memory (estimated size <size>, free <size>)",
            "Found block <word> locally",
            "Running task <float> in stage <float> (TID <int>)",
            "Finished task <float> in stage <float> (TID <int>) in <duration> on <host> (<int>/<int>)",
            "Starting task <float> in stage <float> (TID <int>, <host>, partition <int>, ANY, <int> bytes)",
            "Getting <int> non-empty blocks out of <int> blocks",
            "Started <int> remote fetches in <duration>",
            "Removed broadcast_<int>_piece<int> on <ipport> in memory (size: <size>, free: <size>)",
            "Ensuring <bigint> bytes of free space for block <word>",
            "Saved output of task 'attempt_<bigint>' to <path>",
            "Executor updated: app-<bigint>/<int> is now RUNNING",
            "Asked to send map output locations for shuffle <int> to <ipport>",
        ],
        "BGL" => vec![
            "instruction cache parity error corrected",
            "generating core.<int>",
            "ciod: Error reading message prefix after LOGIN_MESSAGE on CioStream socket to <ipport>",
            "ciod: failed to read message prefix on control stream CioStream socket to <ipport>",
            "<int> double-hummer alignment exceptions",
            "ciod: LOGIN chdir(<path>) failed: No such file or directory",
            "data TLB error interrupt",
            "machine check interrupt (bit=<hex>): L2 dcache unit data parity error",
            "CE sym <int>, at <hex>, mask <hex>",
            "total of <int> ddr error(s) detected and corrected over <int> seconds",
            "ddr errors(s) detected and corrected on rank <int>, symbol <int>, bit <int>",
            "MidplaneSwitchController performing bit sparing on R<int>-M<int>-N<int> bit <int>",
            "program interrupt: fp unavailable interrupt",
            "rts: kernel terminated for reason <int>",
        ],
        "Thunderbird" => vec![
            "session opened for user <user> by (uid=<int>)",
            "session closed for user <user>",
            "connect from <host> (<ip>)",
            "disconnect from <host> (<ip>)",
            "Auth.Error: authentication failed for <user> from <ip>",
            "kernel: ACPI: Processor [CPU<int>] (supports <int> throttling states)",
            "pbs_mom: scan_for_terminated: job <bigint>.<host> task <int> terminated",
            "check pass; user unknown",
            "authentication failure; logname= uid=<int> euid=<int> tty=NODEVssh ruser= rhost=<host>",
            "Could not resolve hostname <host>: Name or service not known",
            "DHCPDISCOVER from <hex> via <word>",
            "data address space violation interrupt at <hex>",
            "kernel: scsi(<int>): Waiting for LIP to complete...",
            "crond(pam_unix)[<int>]: session opened for user <user> by (uid=<int>)",
        ],
        "HealthApp" => vec![
            "calculateCaloriesWithCache totalCalories=<int>",
            "calculateAltitudeWithCache totalAltitude=<int>",
            "onStandStepChanged <int>",
            "onExtend:<int> <int> <int> <int>",
            "getTodayTotalDetailSteps = <bigint>",
            "REPORT : <int> <int> <int> <int>",
            "setTodayTotalDetailSteps=<bigint>",
            "processHandleBroadcastAction action:<word>",
            "upLoadHealthData dataType=<int> count=<int>",
            "SportDataManager refreshing cache for user <user>",
        ],
        "OpenStack" => vec![
            "<ip> \"GET /v2/<uuid>/servers/detail HTTP/1.1\" status: <int> len: <int> time: <float>",
            "<ip> \"POST /v2/<uuid>/os-server-external-events HTTP/1.1\" status: <int> len: <int> time: <float>",
            "[instance: <uuid>] VM Started (Lifecycle Event)",
            "[instance: <uuid>] VM Paused (Lifecycle Event)",
            "[instance: <uuid>] VM Resumed (Lifecycle Event)",
            "[instance: <uuid>] Took <float> seconds to build instance.",
            "[instance: <uuid>] Took <float> seconds to spawn the instance on the hypervisor.",
            "[instance: <uuid>] Terminating instance",
            "[instance: <uuid>] Deleting instance files <path>",
            "[instance: <uuid>] Instance destroyed successfully.",
            "Active base files: <path>",
            "image <uuid> at (<path>): checking",
        ],
        "Proxifier" => vec![
            "<host>.exe - proxy.cse.cuhk.edu.hk:<port> open through proxy proxy.cse.cuhk.edu.hk:<port> HTTPS",
            "<host>.exe - proxy.cse.cuhk.edu.hk:<port> close, <bigint> bytes sent, <bigint> bytes received, lifetime <duration>",
            "<host>.exe *64 - proxy.cse.cuhk.edu.hk:<port> open through proxy proxy.cse.cuhk.edu.hk:<port> HTTPS",
            "<host>.exe - proxy.cse.cuhk.edu.hk:<port> error : Could not connect through proxy proxy.cse.cuhk.edu.hk:<port> - Proxy server cannot establish a connection with the target, status code <int>",
            "open through proxy <host>:<port> HTTPS",
            "close, <bigint> bytes (<size>) sent, <bigint> bytes (<size>) received, lifetime <duration>",
            "<host>.exe failed to connect to <host>:<port>",
            "<host>.exe - <host>:<port> open directly",
        ],
        "HPC" => vec![
            "PSU status ( <word> <word> )",
            "Fan speeds ( <int> <int> <int> <int> <int> <int> )",
            "Temperature ( <int> ) exceeds warning threshold",
            "node node-<int> detected as dead by node-<int>",
            "boot (command <int>) Error: connect() failed on lynxd socket <host>",
            "ambient=<int>",
            "Link error on broadcast tree Interconnect-<hex>:<int>",
            "Node card VPD check: <word>",
            "ServerFileSystem domain storage is full",
            "risBoot command ERROR on node node-<int>",
        ],
        "Zookeeper" => vec![
            "Received connection request /<ipport>",
            "Accepted socket connection from /<ipport>",
            "Closed socket connection for client /<ipport> which had sessionid <hex>",
            "Client attempting to establish new session at /<ipport>",
            "Established session <hex> with negotiated timeout <int> for client /<ipport>",
            "Expiring session <hex>, timeout of <int>ms exceeded",
            "Processed session termination for sessionid: <hex>",
            "caught end of stream exception",
            "Notification time out: <int>",
            "Connection broken for id <bigint>, my id = <int>, error =",
            "Sending snapshot last zxid of peer is <hex>",
            "Snapshotting: <hex> to <path>",
        ],
        "Hadoop" => vec![
            "Progress of TaskAttempt attempt_<bigint> is : <float>",
            "Task 'attempt_<bigint>' done.",
            "TaskAttempt: [attempt_<bigint>] using containerId: [container_<bigint> on NM: [<ipport>]",
            "attempt_<bigint> TaskAttempt Transitioned from <word> to <word>",
            "task_<bigint> Task Transitioned from <word> to <word>",
            "Assigned container container_<bigint> of capacity <memory:<int>, vCores:<int>> on host <host>",
            "Error reading task output <class>",
            "Failed to renew lease for [DFSClient_NONMAPREDUCE_<bigint>_<int>] for <int> seconds. Will retry shortly ...",
            "JVM with ID : jvm_<bigint> asked for a task",
            "Reduce slow start threshold reached. Scheduling reduces.",
            "Scheduling a redundant attempt for task task_<bigint>",
            "Address change detected. Old: <host>/<ip>:<port> New: <host>/<ip>:<port>",
        ],
        "Linux" => vec![
            "session opened for user <user> by (uid=<int>)",
            "session closed for user <user>",
            "authentication failure; logname= uid=<int> euid=<int> tty=NODEVssh ruser= rhost=<host> user=<user>",
            "connection from <ip> () at <word>",
            "Did not receive identification string from <ip>",
            "Received disconnect from <ip>: <int>: Bye Bye",
            "ALERT exited abnormally with [<int>]",
            "Out of memory: Killed process <int> (<word>)",
            "kernel: usb <int>-<int>: new high speed USB device using ehci_hcd and address <int>",
            "CPU<int>: Temperature above threshold, cpu clock throttled",
            "audit: initializing netlink socket (disabled)",
            "klogd <float>, log source = <path> started",
            "cups: cupsd shutdown succeeded",
            "gpm: gpm shutdown failed",
        ],
        "Android" => vec![
            "acquire lock=<int>, flg=<hex>, tag=<word>, name=<word>, ws=<word>, uid=<int>, pid=<int>",
            "release lock=<int>, flg=<hex>, tag=<word>, name=<word>, ws=<word>, uid=<int>, pid=<int>",
            "setSystemUiVisibility vis=<hex> mask=<hex> oldVal=<hex> newVal=<hex> diff=<hex>",
            "Skipping AppWindowToken{<hex> token=Token{<hex> ActivityRecord{<hex> u<int> <word> t<int>}}} -- going to hide",
            "computeScreenConfigurationLocked() Applying updated rotation=<int>",
            "notifyAppStopped: AppWindowToken{<hex> token=Token{<hex>}}",
            "getRunningAppProcesses: caller <int> does not hold REAL_GET_TASKS; limiting output",
            "healthd: battery l=<int> v=<int> t=<float> h=<int> st=<int> c=<int> fc=<int> chg=<word>",
            "audio_hw_primary: select_devices: out_snd_device(<int>: <word>) in_snd_device(<int>: <word>)",
            "Bluetooth Adapter state changed from <word> to <word>",
            "startService called from <word> pid=<int> uid=<int>",
            "wakelock acquired by <word> duration <duration>",
        ],
        "Windows" => vec![
            "CBS Loaded Servicing Stack v<float> with Core: <path>",
            "CSI <hex> Performing <int> operations; <int> are not lock/unlock and follow:",
            "CBS SQM: Initializing online with Windows opt-in: <word>",
            "CBS Warning: Unrecognized packageExtended attribute.",
            "CBS Appl: detect Parent, Package: <word>, Parent: <word>, Disposition = Detect, VersionComp: EQ, BuildComp: <word>",
            "CSI Warning: Attempt to mark store corrupt with category [l:<int>{<int>}]",
            "CBS Session: <bigint> initialized by client <word>.",
            "CBS Failed to internally open package. [HRESULT = <hex> - CBS_E_INVALID_PACKAGE]",
            "CSI Store <bigint> (<hex>) initialized",
            "CBS Exec: Processing complete.  Session: <bigint>, Package: <word> [HRESULT = <hex>]",
        ],
        "Mac" => vec![
            "ARPT: <float>: wl0: setAWDL_PEER_TRAFFIC_REGISTRATION: active <int>, roam_off <int>",
            "Received conn cache update: <int> entries",
            "en0: BSSID changed to <hex>",
            "AirPort: Link Down on awdl0. Reason <int> (Previous Auth no longer valid).",
            "IOThunderboltSwitch<hex>(<hex>)::listenerCallback - Thunderbolt HPD packet for route = <hex> port = <int> unplug = <int>",
            "Sandbox: com.apple.Addres(<int>) deny(<int>) mach-lookup com.apple.contactsd.persistence",
            "kext loaded <hex> name <word> version <float>",
            "WindowServer CGXDisplayDidWakeNotification [<bigint>]: posting kCGSDisplayDidWake",
            "Bluetooth HCI: controller reset (<int>) complete",
            "mDNSResponder: SendResponses: <word> query for <host> failed err <int>",
            "corecaptured: CCFile::captureLogRun Skipping current file Dir file [<path>] Current File [<path>]",
            "networkd: -[NETProcessMonitor checkInProcess:] PID <int> check-in",
        ],
        _ => vec![
            "service <word> started with pid <int>",
            "service <word> stopped with exit code <int>",
            "request from <ip> completed in <duration> with status <int>",
            "failed to open <path>: error <int>",
            "user <user> performed action <word> on resource <path>",
            "cache <word> hit ratio <float> over <int> requests",
        ],
    }
}

/// Vocabulary used when synthesizing additional templates beyond the seed set.
fn synthesis_vocab(
    name: &str,
) -> (
    &'static [&'static str],
    &'static [&'static str],
    &'static [&'static str],
) {
    // (components, actions, details): templates look like
    //   "<component> <action> <detail...>"
    let components: &[&str] = match name {
        "HDFS" => &[
            "dfs.DataNode",
            "dfs.FSNamesystem",
            "dfs.DataBlockScanner",
            "dfs.PacketResponder",
        ],
        "Spark" => &[
            "storage.MemoryStore",
            "scheduler.TaskSetManager",
            "executor.Executor",
            "shuffle.ShuffleBlockFetcherIterator",
            "spark.SecurityManager",
        ],
        "BGL" => &["KERNEL", "APP", "DISCOVERY", "HARDWARE", "MMCS", "LINKCARD"],
        "Thunderbird" => &[
            "kernel",
            "sshd",
            "crond",
            "pbs_mom",
            "postfix/smtpd",
            "ntpd",
            "xinetd",
        ],
        "Mac" => &[
            "kernel",
            "WindowServer",
            "corecaptured",
            "mDNSResponder",
            "Bluetooth",
            "AirPort",
            "sandboxd",
        ],
        "Linux" => &["kernel", "sshd", "su", "ftpd", "crond", "syslogd", "cups"],
        "Android" => &[
            "ActivityManager",
            "WindowManager",
            "PowerManagerService",
            "BluetoothAdapter",
            "AudioFlinger",
            "PackageManager",
        ],
        "Hadoop" => &[
            "mapreduce.Job",
            "yarn.RMContainerAllocator",
            "hdfs.DFSClient",
            "ipc.Server",
            "mapred.Task",
        ],
        "Zookeeper" => &[
            "NIOServerCnxn",
            "QuorumPeer",
            "FastLeaderElection",
            "CommitProcessor",
            "LearnerHandler",
        ],
        "Windows" => &["CBS", "CSI", "SQM", "DPX", "WER"],
        "OpenStack" => &[
            "nova.compute.manager",
            "nova.virt.libvirt",
            "nova.api.openstack",
            "nova.scheduler",
        ],
        "HPC" => &["node", "gige", "interconnect", "psu", "fan"],
        "HealthApp" => &[
            "Step_StandReportReceiver",
            "Step_LSC",
            "Step_SPUtils",
            "Step_ExtSDM",
            "HiH_HealthKit",
        ],
        "OpenSSH" => &["sshd", "pam_unix", "auth"],
        "Proxifier" => &["chrome", "firefox", "outlook", "telegram", "dropbox"],
        "Apache" => &["mod_jk", "workerEnv", "jk2_init", "mod_ssl"],
        _ => &["core", "worker", "scheduler", "io"],
    };
    let actions: &[&str] = &[
        "initialized",
        "starting",
        "stopped",
        "registered",
        "received",
        "completed",
        "failed",
        "retrying",
        "allocated",
        "released",
        "updated",
        "scanning",
        "flushed",
        "committed",
        "rejected",
        "scheduled",
        "expired",
        "resumed",
        "suspended",
        "verified",
        "loaded",
        "unloaded",
        "opened",
        "closed",
        "connected",
        "disconnected",
        "timeout",
        "recovered",
        "synchronized",
        "elected",
    ];
    let details: &[&str] = &[
        "for <word> in <duration>",
        "with status <int>",
        "on <host>",
        "from <ip>",
        "id=<bigint>",
        "at offset <bigint>",
        "after <int> attempts",
        "size <size>",
        "path <path>",
        "session <hex>",
        "for user <user>",
        "code <hex> reason <word>",
        "queue length <int>",
        "latency <duration> p99 <duration>",
        "<int> of <int> done",
        "version <float>",
        "txn <bigint> state <word>",
        "on port <port>",
        "block <blockid>",
        "container container_<bigint>",
    ];
    (components, actions, details)
}

/// Build the full template pool for `name` with exactly `count` templates. The first
/// templates are the hand-written seeds; the remainder are synthesized deterministically
/// (the same `(name, count)` always yields the same pool).
pub fn build_templates(name: &str, count: usize) -> Vec<TemplateSpec> {
    let seeds = seed_patterns(name);
    let mut templates: Vec<TemplateSpec> = Vec::with_capacity(count);
    for (i, pattern) in seeds.iter().take(count).enumerate() {
        templates.push(TemplateSpec::parse(i, pattern));
    }
    let (components, actions, details) = synthesis_vocab(name);
    let mut i = templates.len();
    let mut round = 0usize;
    while templates.len() < count {
        let component = components[round % components.len()];
        let action = actions[(round / components.len()) % actions.len()];
        let detail = details[(round / (components.len() * actions.len())) % details.len()];
        // Vary the arity every few templates so lengths differ (important because the
        // parser's initial grouping is length-based).
        let pattern = match round % 3 {
            0 => format!("{component} {action} {detail}"),
            1 => format!("{component}: {action} {detail} elapsed <duration>"),
            _ => format!("{component} worker <int> {action} {detail}"),
        };
        templates.push(TemplateSpec::parse(i, &pattern));
        i += 1;
        round += 1;
        // Safety valve: vocabulary exhausted (cannot happen with the sizes above, but a
        // wrong edit should fail loudly rather than loop forever).
        assert!(
            round < components.len() * actions.len() * details.len() * 3,
            "template synthesis vocabulary exhausted for {name}"
        );
    }
    templates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sixteen_families_have_specs() {
        for name in dataset_names() {
            let spec = dataset_spec(name).unwrap_or_else(|| panic!("missing spec for {name}"));
            assert!(spec.loghub_templates > 0);
        }
        assert_eq!(dataset_names().len(), 16);
    }

    #[test]
    fn loghub2_excludes_android_and_windows() {
        let names = loghub2_dataset_names();
        assert_eq!(names.len(), 14);
        assert!(!names.contains(&"Android"));
        assert!(!names.contains(&"Windows"));
    }

    #[test]
    fn unknown_dataset_returns_none() {
        assert!(dataset_spec("NotADataset").is_none());
    }

    #[test]
    fn table1_counts_match_the_paper() {
        assert_eq!(dataset_spec("HDFS").unwrap().loghub_templates, 14);
        assert_eq!(dataset_spec("HDFS").unwrap().loghub2_templates, Some(46));
        assert_eq!(
            dataset_spec("Thunderbird").unwrap().loghub2_templates,
            Some(1_241)
        );
        assert_eq!(dataset_spec("Apache").unwrap().loghub_templates, 6);
        assert_eq!(dataset_spec("Mac").unwrap().loghub_templates, 341);
    }

    #[test]
    fn seed_patterns_parse_for_every_family() {
        for name in dataset_names() {
            for (i, p) in seed_patterns(name).iter().enumerate() {
                let t = TemplateSpec::parse(i, p);
                assert!(!t.segments.is_empty(), "{name} seed {i} is empty");
            }
        }
    }

    #[test]
    fn build_templates_hits_exact_count() {
        for name in ["HDFS", "Mac", "Thunderbird", "Apache"] {
            let spec = dataset_spec(name).unwrap();
            let pool = build_templates(name, spec.loghub_templates);
            assert_eq!(pool.len(), spec.loghub_templates);
            // Ids are sequential.
            for (i, t) in pool.iter().enumerate() {
                assert_eq!(t.id, i);
            }
        }
    }

    #[test]
    fn build_templates_is_deterministic() {
        let a = build_templates("BGL", 120);
        let b = build_templates("BGL", 120);
        assert_eq!(a, b);
    }

    #[test]
    fn synthesized_templates_are_distinct() {
        let pool = build_templates("Thunderbird", 300);
        let mut forms: Vec<String> = pool.iter().map(|t| t.wildcard_form()).collect();
        forms.sort();
        forms.dedup();
        assert_eq!(
            forms.len(),
            300,
            "synthesized templates must be pairwise distinct"
        );
    }

    #[test]
    fn large_pool_for_loghub2_thunderbird() {
        let pool = build_templates("Thunderbird", 1_241);
        assert_eq!(pool.len(), 1_241);
    }
}
