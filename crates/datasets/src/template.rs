//! Template specifications: the ground-truth log statements a synthetic dataset is
//! generated from. A template is a sequence of constant segments and typed variable
//! slots; rendering a template fills every slot with a value drawn from the slot's kind.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of value a variable slot produces. Kinds differ in their value-pool size,
/// which controls how much exact duplication the generated stream exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarKind {
    /// Small integer (0..1000) — counters, sizes, codes.
    SmallInt,
    /// Large integer — offsets, byte counts.
    LargeInt,
    /// Signed block / transaction id like `blk_-1608999687919862906`.
    BlockId,
    /// IPv4 address from a bounded pool.
    Ipv4,
    /// IPv4:port pair.
    IpPort,
    /// Hex identifier like `0x7f3a12`.
    Hex,
    /// Unix-style file path.
    Path,
    /// Host name from a bounded pool.
    Host,
    /// User name from a bounded pool.
    User,
    /// Duration with unit, e.g. `35ms`.
    Duration,
    /// Size with unit, e.g. `512MB`.
    Size,
    /// UUID.
    Uuid,
    /// A short word drawn from a bounded pool (status strings, component names).
    Word,
    /// Floating point value.
    Float,
    /// TCP/UDP port number.
    Port,
    /// Java-style exception / class name.
    ClassName,
}

/// One segment of a template: literal text or a typed variable slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// Literal text emitted verbatim.
    Const(String),
    /// A variable slot of the given kind.
    Var(VarKind),
}

/// A ground-truth template: an ordered list of segments plus a stable id within its
/// dataset family.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemplateSpec {
    /// Index of this template within its dataset family.
    pub id: usize,
    /// The segments making up the template.
    pub segments: Vec<Segment>,
}

impl TemplateSpec {
    /// Build a template from a compact pattern string where `<kind>` placeholders mark
    /// variable slots, e.g. `"Received block <blockid> of size <int> from <ip>"`.
    ///
    /// Recognised placeholders: `<int>`, `<bigint>`, `<blockid>`, `<ip>`, `<ipport>`,
    /// `<hex>`, `<path>`, `<host>`, `<user>`, `<duration>`, `<size>`, `<uuid>`, `<word>`,
    /// `<float>`, `<port>`, `<class>`.
    ///
    /// # Panics
    /// Panics on an unknown placeholder — template pools are static data defined in this
    /// crate, so an unknown placeholder is a programming error caught by the tests.
    pub fn parse(id: usize, pattern: &str) -> Self {
        let mut segments = Vec::new();
        let mut rest = pattern;
        while let Some(open) = rest.find('<') {
            if let Some(close_rel) = rest[open..].find('>') {
                let close = open + close_rel;
                let name = &rest[open + 1..close];
                if let Some(kind) = placeholder_kind(name) {
                    if open > 0 {
                        segments.push(Segment::Const(rest[..open].to_string()));
                    }
                    segments.push(Segment::Var(kind));
                    rest = &rest[close + 1..];
                    continue;
                } else if name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
                    && !name.is_empty()
                {
                    panic!("unknown placeholder <{name}> in template pattern {pattern:?}");
                }
            }
            // A literal '<' (e.g. "<unknown>" markers in Mac logs): keep it as constant
            // text up to and including the '<'.
            segments.push(Segment::Const(rest[..open + 1].to_string()));
            rest = &rest[open + 1..];
        }
        if !rest.is_empty() {
            segments.push(Segment::Const(rest.to_string()));
        }
        TemplateSpec { id, segments }
    }

    /// Number of variable slots.
    pub fn variable_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Var(_)))
            .count()
    }

    /// Render the template with every variable slot replaced by `*`, the canonical form
    /// used to compare against parser output in the accuracy experiments.
    pub fn wildcard_form(&self) -> String {
        let mut out = String::new();
        for seg in &self.segments {
            match seg {
                Segment::Const(text) => out.push_str(text),
                Segment::Var(_) => out.push('*'),
            }
        }
        out
    }
}

impl fmt::Display for TemplateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.wildcard_form())
    }
}

fn placeholder_kind(name: &str) -> Option<VarKind> {
    Some(match name {
        "int" => VarKind::SmallInt,
        "bigint" => VarKind::LargeInt,
        "blockid" => VarKind::BlockId,
        "ip" => VarKind::Ipv4,
        "ipport" => VarKind::IpPort,
        "hex" => VarKind::Hex,
        "path" => VarKind::Path,
        "host" => VarKind::Host,
        "user" => VarKind::User,
        "duration" => VarKind::Duration,
        "size" => VarKind::Size,
        "uuid" => VarKind::Uuid,
        "word" => VarKind::Word,
        "float" => VarKind::Float,
        "port" => VarKind::Port,
        "class" => VarKind::ClassName,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_mixed_template() {
        let t = TemplateSpec::parse(0, "Received block <blockid> of size <bigint> from <ip>");
        assert_eq!(t.variable_count(), 3);
        assert_eq!(t.wildcard_form(), "Received block * of size * from *");
    }

    #[test]
    fn parse_constant_only_template() {
        let t = TemplateSpec::parse(1, "Starting namenode service");
        assert_eq!(t.variable_count(), 0);
        assert_eq!(t.wildcard_form(), "Starting namenode service");
    }

    #[test]
    fn parse_adjacent_placeholders() {
        let t = TemplateSpec::parse(2, "<word>: retry <int>/<int> for <user>");
        assert_eq!(t.variable_count(), 4);
        assert_eq!(t.wildcard_form(), "*: retry */* for *");
    }

    #[test]
    fn literal_angle_brackets_survive() {
        let t = TemplateSpec::parse(3, "state <UNKNOWN> reached");
        assert_eq!(t.variable_count(), 0);
        assert!(t.wildcard_form().contains("<UNKNOWN>"));
    }

    #[test]
    #[should_panic(expected = "unknown placeholder")]
    fn unknown_placeholder_panics() {
        TemplateSpec::parse(4, "value <nosuchkind> here");
    }

    #[test]
    fn display_matches_wildcard_form() {
        let t = TemplateSpec::parse(5, "open <path> flags <hex>");
        assert_eq!(format!("{t}"), t.wildcard_form());
    }
}
