//! Variable value generators for template slots.
//!
//! Every [`VarKind`] draws from a bounded pool so that the
//! generated stream exhibits realistic exact-duplicate rates: real logs repeat the same
//! block ids, hosts and users over and over, which is exactly what the deduplication
//! optimisation (§4.1.3, Fig. 4) exploits.

use crate::template::VarKind;
use rand::rngs::StdRng;
use rand::Rng;

/// Pool sizes controlling duplication. Smaller pools mean more repeated values.
#[derive(Debug, Clone)]
pub struct VariablePools {
    /// Number of distinct hosts / users / words per dataset.
    pub small_pool: usize,
    /// Number of distinct ids (blocks, UUIDs, hex) per dataset.
    pub id_pool: usize,
}

impl Default for VariablePools {
    fn default() -> Self {
        VariablePools {
            small_pool: 40,
            id_pool: 5_000,
        }
    }
}

const WORDS: &[&str] = &[
    "success",
    "failed",
    "pending",
    "running",
    "stopped",
    "timeout",
    "retry",
    "aborted",
    "active",
    "inactive",
    "ready",
    "closed",
    "opened",
    "granted",
    "denied",
    "expired",
    "normal",
    "degraded",
    "primary",
    "secondary",
    "leader",
    "follower",
    "idle",
    "busy",
];

const USERS: &[&str] = &[
    "root", "admin", "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan",
    "judy", "mallory", "oscar", "peggy", "trent", "victor", "wendy", "service", "daemon",
    "operator", "deploy", "www", "nobody",
];

const PATH_ROOTS: &[&str] = &[
    "/var/log",
    "/usr/local/bin",
    "/data/blocks",
    "/tmp",
    "/home/user",
    "/etc/conf.d",
    "/opt/app",
    "/mnt/disk1",
    "/proc/sys",
    "/srv/data",
];

const CLASSES: &[&str] = &[
    "java.io.IOException",
    "org.apache.hadoop.hdfs.DFSClient",
    "org.apache.spark.scheduler.TaskSetManager",
    "java.lang.NullPointerException",
    "org.apache.zookeeper.ClientCnxn",
    "io.netty.channel.ChannelHandler",
    "com.example.rpc.RpcTimeoutException",
    "java.net.SocketTimeoutException",
];

/// Draw one value for a slot of kind `kind`.
pub fn render_value(kind: VarKind, rng: &mut StdRng, pools: &VariablePools) -> String {
    match kind {
        VarKind::SmallInt => rng.gen_range(0..1000u32).to_string(),
        VarKind::LargeInt => rng.gen_range(0..100_000_000u64).to_string(),
        VarKind::BlockId => {
            let id = rng.gen_range(0..pools.id_pool as i64);
            format!("blk_{}", id * 7_919 - 4_000_000_000_i64)
        }
        VarKind::Ipv4 => {
            let host = rng.gen_range(0..pools.small_pool.max(1)) as u8;
            format!(
                "10.{}.{}.{}",
                rng.gen_range(0..4u8),
                rng.gen_range(0..8u8),
                host
            )
        }
        VarKind::IpPort => {
            let host = rng.gen_range(0..pools.small_pool.max(1)) as u8;
            format!(
                "10.{}.{}.{}:{}",
                rng.gen_range(0..4u8),
                rng.gen_range(0..8u8),
                host,
                rng.gen_range(1024..65535u32)
            )
        }
        VarKind::Hex => format!("0x{:x}", rng.gen_range(0..pools.id_pool as u64 * 16)),
        VarKind::Path => {
            let root = PATH_ROOTS[rng.gen_range(0..PATH_ROOTS.len())];
            format!("{}/file_{}.dat", root, rng.gen_range(0..pools.id_pool))
        }
        VarKind::Host => format!("node-{:03}", rng.gen_range(0..pools.small_pool.max(1))),
        VarKind::User => {
            USERS[rng.gen_range(0..USERS.len().min(pools.small_pool.max(1)))].to_string()
        }
        VarKind::Duration => format!("{}ms", rng.gen_range(1..30_000u32)),
        VarKind::Size => format!("{}MB", rng.gen_range(1..4096u32)),
        VarKind::Uuid => {
            let a: u32 = rng.gen_range(0..pools.id_pool as u32);
            format!(
                "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
                a,
                a % 0xffff,
                0x4000 | (a % 0x0fff),
                0x8000 | (a % 0x3fff),
                a as u64 * 99_991
            )
        }
        VarKind::Word => WORDS[rng.gen_range(0..WORDS.len())].to_string(),
        VarKind::Float => format!("{:.2}", rng.gen_range(0.0..1000.0f64)),
        VarKind::Port => rng.gen_range(1024..65535u32).to_string(),
        VarKind::ClassName => CLASSES[rng.gen_range(0..CLASSES.len())].to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn values_are_nonempty_for_every_kind() {
        let pools = VariablePools::default();
        let mut r = rng();
        for kind in [
            VarKind::SmallInt,
            VarKind::LargeInt,
            VarKind::BlockId,
            VarKind::Ipv4,
            VarKind::IpPort,
            VarKind::Hex,
            VarKind::Path,
            VarKind::Host,
            VarKind::User,
            VarKind::Duration,
            VarKind::Size,
            VarKind::Uuid,
            VarKind::Word,
            VarKind::Float,
            VarKind::Port,
            VarKind::ClassName,
        ] {
            let v = render_value(kind, &mut r, &pools);
            assert!(!v.is_empty(), "{kind:?} rendered empty");
            assert!(
                !v.contains(' '),
                "{kind:?} rendered a value with spaces: {v}"
            );
        }
    }

    #[test]
    fn block_ids_look_like_hdfs_block_ids() {
        let pools = VariablePools::default();
        let mut r = rng();
        let v = render_value(VarKind::BlockId, &mut r, &pools);
        assert!(v.starts_with("blk_"));
    }

    #[test]
    fn small_pool_limits_distinct_hosts() {
        let pools = VariablePools {
            small_pool: 5,
            id_pool: 10,
        };
        let mut r = rng();
        let mut hosts = std::collections::HashSet::new();
        for _ in 0..200 {
            hosts.insert(render_value(VarKind::Host, &mut r, &pools));
        }
        assert!(hosts.len() <= 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let pools = VariablePools::default();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            assert_eq!(
                render_value(VarKind::Path, &mut a, &pools),
                render_value(VarKind::Path, &mut b, &pools)
            );
        }
    }
}
