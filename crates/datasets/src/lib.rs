//! `datasets` — synthetic LogHub / LogHub-2.0 style corpora with exact ground truth.
//!
//! The paper evaluates on the public LogHub and LogHub-2.0 benchmarks (§5.1.1, Table 1).
//! Those corpora are not available offline, so this crate provides, for each of the 16
//! dataset families, a *generator* that produces logs with the same structural
//! characteristics the evaluation depends on:
//!
//! * a family-specific pool of log templates (counts calibrated to Table 1),
//! * realistic variable kinds per slot (block ids, IPs, paths, durations, users, …),
//! * Zipf-distributed template frequencies (a few templates dominate, many are rare),
//! * heavy exact-duplicate rates (the property Fig. 4 measures),
//! * an exact ground-truth template label per generated record.
//!
//! A loader for genuine LogHub `*_structured.csv` files is also provided
//! ([`loader::load_structured_csv`]) so every experiment can be re-run on the real data
//! when it is placed under `data/`.

pub mod catalog;
pub mod generator;
pub mod loader;
pub mod stats;
pub mod template;
pub mod variables;
pub mod zipf;

pub use catalog::{dataset_names, dataset_spec, loghub2_dataset_names, DatasetSpec};
pub use generator::{GeneratorConfig, LabeledDataset};
pub use stats::DatasetStats;
pub use template::{Segment, TemplateSpec, VarKind};
pub use zipf::Zipf;
