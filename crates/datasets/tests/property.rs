//! Property-based tests for the synthetic dataset generators.

use datasets::{dataset_names, GeneratorConfig, LabeledDataset, Segment, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated record is labelled with a valid template id and contains every
    /// constant segment of that template, in order.
    #[test]
    fn records_are_consistent_with_their_labels(
        dataset_idx in 0usize..16,
        num_logs in 50usize..400,
        seed in any::<u64>(),
    ) {
        let name = dataset_names()[dataset_idx];
        let config = GeneratorConfig {
            num_logs,
            ..GeneratorConfig::loghub(name)
        }.with_seed(seed);
        let ds = LabeledDataset::generate(&config);
        prop_assert_eq!(ds.records.len(), num_logs);
        prop_assert_eq!(ds.labels.len(), num_logs);
        for (record, &label) in ds.records.iter().zip(&ds.labels) {
            prop_assert!(label < ds.templates.len());
            let mut cursor = 0usize;
            for segment in &ds.templates[label].segments {
                if let Segment::Const(text) = segment {
                    match record[cursor..].find(text.as_str()) {
                        Some(found) => cursor += found + text.len(),
                        None => prop_assert!(false, "segment {text:?} missing in {record:?}"),
                    }
                }
            }
        }
    }

    /// Generation is a pure function of its configuration.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let config = GeneratorConfig {
            num_logs: 200,
            ..GeneratorConfig::loghub("HDFS")
        }.with_seed(seed);
        let a = LabeledDataset::generate(&config);
        let b = LabeledDataset::generate(&config);
        prop_assert_eq!(a.records, b.records);
        prop_assert_eq!(a.labels, b.labels);
    }

    /// Zipf sampling stays in range and its probabilities sum to one for any size/skew.
    #[test]
    fn zipf_is_well_formed(n in 1usize..500, s in 0.0f64..3.0, seed in any::<u64>()) {
        let zipf = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| zipf.probability(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }
}
