//! Randomized property tests for the synthetic dataset generators.
//!
//! Ported from proptest to seeded randomized loops (the offline build environment has
//! no proptest); every case is drawn from a fixed-seed [`StdRng`], so failures are
//! deterministic and reproducible.

use datasets::{dataset_names, GeneratorConfig, LabeledDataset, Segment, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every generated record is labelled with a valid template id and contains every
/// constant segment of that template, in order.
#[test]
fn records_are_consistent_with_their_labels() {
    let mut rng = StdRng::seed_from_u64(0xDA7A1);
    for _ in 0..16 {
        let name = dataset_names()[rng.gen_range(0..16usize)];
        let num_logs = rng.gen_range(50..400usize);
        let seed = rng.gen_range(0..u64::MAX);
        let config = GeneratorConfig {
            num_logs,
            ..GeneratorConfig::loghub(name)
        }
        .with_seed(seed);
        let ds = LabeledDataset::generate(&config);
        assert_eq!(ds.records.len(), num_logs);
        assert_eq!(ds.labels.len(), num_logs);
        for (record, &label) in ds.records.iter().zip(&ds.labels) {
            assert!(label < ds.templates.len());
            let mut cursor = 0usize;
            for segment in &ds.templates[label].segments {
                if let Segment::Const(text) = segment {
                    match record[cursor..].find(text.as_str()) {
                        Some(found) => cursor += found + text.len(),
                        None => panic!("segment {text:?} missing in {record:?}"),
                    }
                }
            }
        }
    }
}

/// Generation is a pure function of its configuration.
#[test]
fn generation_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xDA7A2);
    for _ in 0..8 {
        let seed = rng.gen_range(0..u64::MAX);
        let config = GeneratorConfig {
            num_logs: 200,
            ..GeneratorConfig::loghub("HDFS")
        }
        .with_seed(seed);
        let a = LabeledDataset::generate(&config);
        let b = LabeledDataset::generate(&config);
        assert_eq!(a.records, b.records);
        assert_eq!(a.labels, b.labels);
    }
}

/// Zipf sampling stays in range and its probabilities sum to one for any size/skew.
#[test]
fn zipf_is_well_formed() {
    let mut outer = StdRng::seed_from_u64(0xDA7A3);
    for _ in 0..40 {
        let n = outer.gen_range(1..500usize);
        let s = outer.gen_range(0.0..3.0f64);
        let seed = outer.gen_range(0..u64::MAX);
        let zipf = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| zipf.probability(i)).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "probabilities sum to {total} (n={n}, s={s})"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            assert!(zipf.sample(&mut rng) < n);
        }
    }
}
