//! Fig. 12 — throughput vs. degree of parallelism (1–16 workers) on LogHub-2.0-scale
//! corpora, sorted by dataset size. Large datasets benefit; small ones plateau early.
//!
//! Two engines are swept: the scoped-thread `match_batch` path the paper's figure
//! measures, and the sharded streaming ingestion engine (`StreamIngestor`, shards =
//! workers). Wall-clock speedups obviously require more than one physical core.

use bench::{eval_bytebrain, eval_bytebrain_stream, loghub2_scale, maybe_write, DEFAULT_THRESHOLD};
use bytebrain::TrainConfig;
use datasets::LabeledDataset;
use eval::report::{fmt_sci, ExperimentRecord, TextTable};

fn main() {
    let workers = [1usize, 2, 4, 8, 16];
    let datasets = [
        "Apache",
        "Zookeeper",
        "Mac",
        "HealthApp",
        "Hadoop",
        "HPC",
        "OpenStack",
        "OpenSSH",
        "BGL",
        "HDFS",
        "Spark",
        "Thunderbird",
    ];
    let scale = loghub2_scale();
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(workers.iter().map(|w| format!("{w} workers")));
    headers.push("speedup 16/1".to_string());
    let mut table = TextTable::new(headers);
    let mut record = ExperimentRecord::new("fig12", "throughput vs parallelism");
    for dataset in datasets {
        let ds = LabeledDataset::loghub2(dataset, scale);
        let mut row = vec![dataset.to_string()];
        let mut first = 0.0;
        let mut last = 0.0;
        for (i, &w) in workers.iter().enumerate() {
            let outcome = eval_bytebrain(
                &ds,
                TrainConfig::default().with_parallelism(w),
                DEFAULT_THRESHOLD,
            );
            let tp = outcome.throughput.logs_per_second;
            row.push(fmt_sci(tp));
            record.insert(&format!("{dataset}_{w}"), tp);
            if i == 0 {
                first = tp;
            }
            last = tp;
        }
        row.push(format!(
            "{:.2}x",
            if first > 0.0 { last / first } else { 0.0 }
        ));
        table.add_row(row);
        eprintln!("[fig12] finished {dataset}");
    }
    println!("Fig. 12: throughput vs parallelism ({scale} logs per dataset)\n");
    println!("{}", table.render());

    // Second sweep: the sharded streaming ingestion engine, shards = workers.
    let mut stream_headers = vec!["Dataset".to_string()];
    stream_headers.extend(workers.iter().map(|w| format!("{w} shards")));
    stream_headers.push("speedup 16/1".to_string());
    let mut stream_table = TextTable::new(stream_headers);
    for dataset in ["Apache", "OpenSSH", "HDFS", "Thunderbird"] {
        let ds = LabeledDataset::loghub2(dataset, scale);
        let mut row = vec![dataset.to_string()];
        let mut first = 0.0;
        let mut last = 0.0;
        for (i, &w) in workers.iter().enumerate() {
            let outcome = eval_bytebrain_stream(&ds, w, w);
            let tp = outcome.throughput.logs_per_second;
            row.push(fmt_sci(tp));
            record.insert(&format!("stream_{dataset}_{w}"), tp);
            if i == 0 {
                first = tp;
            }
            last = tp;
        }
        row.push(format!(
            "{:.2}x",
            if first > 0.0 { last / first } else { 0.0 }
        ));
        stream_table.add_row(row);
        eprintln!("[fig12] finished streaming sweep for {dataset}");
    }
    println!("Fig. 12 (streaming engine): throughput vs shard/worker count\n");
    println!("{}", stream_table.render());
    maybe_write(&record);
}
