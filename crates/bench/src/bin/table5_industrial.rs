//! Table 5 — industrial-style evaluation: ingest synthetic production-flavoured topics
//! through the full service layer (online matching + triggered training) and report log
//! volume, model size and training time, as the paper does for TLS production topics.

use bench::maybe_write;
use datasets::LabeledDataset;
use eval::report::{ExperimentRecord, TextTable};
use service::{LogTopic, TopicConfig};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    dataset: &'static str,
    records: usize,
}

fn main() {
    // Production-flavoured topics: the dataset family stands in for the scenario's shape.
    let scenarios = [
        Scenario {
            name: "Text stream processing",
            dataset: "Spark",
            records: 120_000,
        },
        Scenario {
            name: "Webserver access log (large)",
            dataset: "Apache",
            records: 80_000,
        },
        Scenario {
            name: "Webserver access log (small)",
            dataset: "Apache",
            records: 40_000,
        },
        Scenario {
            name: "Go HTTP API server",
            dataset: "Hadoop",
            records: 30_000,
        },
        Scenario {
            name: "Go search server",
            dataset: "Zookeeper",
            records: 30_000,
        },
    ];
    let mut table = TextTable::new(vec![
        "Topic Scenario",
        "Log Volume (MB/s ingested)",
        "Model Size",
        "Training Time",
        "Match rate after training",
    ]);
    let mut record = ExperimentRecord::new("table5", "industrial-style service evaluation");
    for scenario in &scenarios {
        let ds = LabeledDataset::loghub2(scenario.dataset, scenario.records);
        let mut topic =
            LogTopic::new(TopicConfig::new(scenario.name).with_volume_threshold(u64::MAX));
        // Ingest in batches, measuring wall-clock ingest rate (match + store + training).
        let started = Instant::now();
        let mut matched = 0usize;
        let mut total = 0usize;
        for chunk in ds.records.chunks(10_000) {
            let outcome = topic.ingest(chunk);
            matched += outcome.matched;
            total += chunk.len();
        }
        let elapsed = started.elapsed().as_secs_f64();
        let stats = topic.stats();
        let mb_per_s = stats.total_bytes as f64 / (1024.0 * 1024.0) / elapsed.max(1e-9);
        let model_mb = stats.model_size_bytes as f64 / (1024.0 * 1024.0);
        record.insert(&format!("{}_mb_per_s", scenario.name), mb_per_s);
        record.insert(
            &format!("{}_model_bytes", scenario.name),
            stats.model_size_bytes as f64,
        );
        record.insert(
            &format!("{}_training_s", scenario.name),
            stats.last_training_seconds,
        );
        table.add_row(vec![
            scenario.name.to_string(),
            format!("{mb_per_s:.1} MB/s"),
            if model_mb >= 1.0 {
                format!("{model_mb:.1} MB")
            } else {
                format!("{:.0} KB", stats.model_size_bytes as f64 / 1024.0)
            },
            format!("{:.2}s", stats.last_training_seconds),
            format!("{:.1}%", 100.0 * matched as f64 / total.max(1) as f64),
        ]);
        eprintln!("[table5] finished {}", scenario.name);
    }
    println!("Table 5: service-layer evaluation on production-flavoured synthetic topics\n");
    println!("{}", table.render());
    maybe_write(&record);
}
