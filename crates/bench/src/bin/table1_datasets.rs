//! Table 1 — LogHub and LogHub-2.0 dataset statistics.
//!
//! Prints, for every dataset family, the statistics of the synthetic corpora used by the
//! other experiments (#logs, size, #templates), alongside the counts the paper reports
//! for the original corpora so the calibration is visible.

use bench::{loghub2_scale, maybe_write};
use datasets::{dataset_names, dataset_spec, DatasetStats, LabeledDataset};
use eval::report::{ExperimentRecord, TextTable};

fn main() {
    let scale = loghub2_scale();
    let mut table = TextTable::new(vec![
        "Dataset",
        "LogHub #Logs",
        "LogHub Size",
        "LogHub #Templates (paper)",
        "LogHub-2.0 #Logs (here)",
        "LogHub-2.0 Size",
        "LogHub-2.0 #Templates (paper)",
    ]);
    let mut record = ExperimentRecord::new("table1", "dataset statistics");
    for name in dataset_names() {
        let spec = dataset_spec(name).expect("catalog entry");
        let small = LabeledDataset::loghub(name);
        let small_stats = DatasetStats::of(&small);
        let (large_logs, large_size) = if spec.loghub2_logs.is_some() {
            let large = LabeledDataset::loghub2(name, scale);
            let stats = DatasetStats::of(&large);
            (stats.num_logs.to_string(), stats.size_human())
        } else {
            ("-".to_string(), "-".to_string())
        };
        record.insert(
            &format!("{name}_loghub_templates"),
            spec.loghub_templates as f64,
        );
        record.insert(
            &format!("{name}_loghub_size_bytes"),
            small_stats.size_bytes as f64,
        );
        table.add_row(vec![
            name.to_string(),
            small_stats.num_logs.to_string(),
            small_stats.size_human(),
            spec.loghub_templates.to_string(),
            large_logs,
            large_size,
            spec.loghub2_templates
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("Table 1: dataset statistics (synthetic corpora; template counts from the paper)");
    println!("LogHub-2.0 scale: {scale} logs per dataset (BYTEBRAIN_LOGHUB2_LOGS to change)\n");
    println!("{}", table.render());
    maybe_write(&record);
}
