//! Fig. 4 — CDF of per-unique-record occurrence counts, with and without common-variable
//! replacement, for the four datasets the paper plots (Linux, Thunderbird, Spark, Apache).

use bench::{loghub2_scale, maybe_write};
use datasets::stats::{duplication_counts, empirical_cdf};
use datasets::LabeledDataset;
use eval::report::{ExperimentRecord, TextTable};
use logtok::Masker;

fn main() {
    let scale = loghub2_scale();
    let masker = Masker::default_rules();
    let mut table = TextTable::new(vec![
        "Dataset",
        "#Logs",
        "Unique w/o replacement",
        "Unique w/ replacement",
        "Mean count w/o",
        "Mean count w/",
        "p50 w/",
        "p90 w/",
    ]);
    let mut record = ExperimentRecord::new("fig4", "duplication CDF with/without masking");
    for dataset in ["Linux", "Thunderbird", "Spark", "Apache"] {
        let ds = LabeledDataset::loghub2(dataset, scale);
        let raw = duplication_counts(&ds.records, |s| s.to_string());
        let masked = duplication_counts(&ds.records, |s| masker.mask(s));
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        let cdf = empirical_cdf(&masked);
        let percentile = |p: f64| {
            cdf.iter()
                .find(|(_, frac)| *frac >= p)
                .map(|(count, _)| *count)
                .unwrap_or(0)
        };
        record.insert(&format!("{dataset}_unique_raw"), raw.len() as f64);
        record.insert(&format!("{dataset}_unique_masked"), masked.len() as f64);
        table.add_row(vec![
            dataset.to_string(),
            ds.len().to_string(),
            raw.len().to_string(),
            masked.len().to_string(),
            format!("{:.1}", mean(&raw)),
            format!("{:.1}", mean(&masked)),
            percentile(0.5).to_string(),
            percentile(0.9).to_string(),
        ]);
    }
    println!("Fig. 4: log duplication, without vs with common-variable replacement ({scale} logs/dataset)\n");
    println!("{}", table.render());
    println!("(Variable replacement collapses many more records onto each unique statement, which is what makes deduplication effective.)");
    maybe_write(&record);
}
