//! Fig. 10 — storage cost of ordinal encoding: the size of the token→id dictionary as a
//! function of log volume. Hash encoding needs no dictionary at all, so this is exactly
//! the storage ByteBrain saves.

use bench::{loghub2_scale, maybe_write};
use datasets::{loghub2_dataset_names, LabeledDataset};
use eval::report::{ExperimentRecord, TextTable};
use logtok::{OrdinalEncoder, Preprocessor};

fn main() {
    let scale = loghub2_scale();
    let preprocessor = Preprocessor::default_pipeline();
    let mut table = TextTable::new(vec![
        "Dataset",
        "Log size (bytes)",
        "Distinct tokens",
        "Dictionary size (bytes)",
        "Dictionary / log size",
    ]);
    let mut record = ExperimentRecord::new("fig10", "ordinal-encoding dictionary size");
    for dataset in loghub2_dataset_names() {
        let ds = LabeledDataset::loghub2(dataset, scale);
        let mut encoder = OrdinalEncoder::new();
        for r in &ds.records {
            let tokens = preprocessor.tokens_of(r);
            encoder.encode_sequence(&tokens);
        }
        let log_bytes = ds.total_bytes();
        let dict_bytes = encoder.dictionary_size_bytes();
        record.insert(&format!("{dataset}_log_bytes"), log_bytes as f64);
        record.insert(&format!("{dataset}_dict_bytes"), dict_bytes as f64);
        table.add_row(vec![
            dataset.to_string(),
            log_bytes.to_string(),
            encoder.vocabulary_size().to_string(),
            dict_bytes.to_string(),
            format!("{:.4}", dict_bytes as f64 / log_bytes as f64),
        ]);
        eprintln!("[fig10] finished {dataset}");
    }
    println!(
        "Fig. 10: token dictionary size required by ordinal encoding ({scale} logs per dataset)."
    );
    println!("Hash encoding (ByteBrain's default) stores no dictionary, so the third column is the saving.\n");
    println!("{}", table.render());
    maybe_write(&record);
}
