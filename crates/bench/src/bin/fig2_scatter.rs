//! Fig. 2 — throughput vs. group-accuracy scatter: one point per method, averaged over a
//! representative set of datasets. ByteBrain must land in the top-right corner (high
//! throughput, near-SOTA accuracy).

use bench::{eval_all_methods, loghub2_scale, maybe_write};
use datasets::LabeledDataset;
use eval::report::{fmt2, fmt_sci, ExperimentRecord, TextTable};
use std::collections::HashMap;

fn main() {
    let scale = loghub2_scale().min(20_000);
    let datasets = ["HDFS", "Apache", "OpenSSH", "Zookeeper", "Spark", "BGL"];
    let mut accuracy: HashMap<String, Vec<f64>> = HashMap::new();
    let mut throughput: HashMap<String, Vec<f64>> = HashMap::new();
    for dataset in datasets {
        eprintln!("[fig2] evaluating {dataset}");
        let ds = LabeledDataset::loghub2(dataset, scale);
        for outcome in eval_all_methods(&ds, true) {
            accuracy
                .entry(outcome.parser.clone())
                .or_default()
                .push(outcome.accuracy);
            throughput
                .entry(outcome.parser)
                .or_default()
                .push(outcome.throughput.logs_per_second);
        }
    }
    let mut table = TextTable::new(vec!["Method", "Throughput (logs/s)", "Group Accuracy"]);
    let mut record = ExperimentRecord::new("fig2", "accuracy vs throughput scatter");
    let mut rows: Vec<(String, f64, f64)> = accuracy
        .iter()
        .map(|(method, accs)| {
            let mean_acc = accs.iter().sum::<f64>() / accs.len() as f64;
            let tps = &throughput[method];
            let mean_tp = tps.iter().sum::<f64>() / tps.len() as f64;
            (method.clone(), mean_tp, mean_acc)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (method, tp, acc) in &rows {
        table.add_row(vec![method.clone(), fmt_sci(*tp), fmt2(*acc)]);
        record.insert(&format!("{method}_throughput"), *tp);
        record.insert(&format!("{method}_accuracy"), *acc);
    }
    println!(
        "Fig. 2: throughput vs accuracy (averaged over {} datasets, {scale} logs each)\n",
        datasets.len()
    );
    println!("{}", table.render());
    // The headline claim: ByteBrain is the fastest method while staying near the best accuracy.
    if let Some((fastest, _, _)) = rows.first() {
        println!("Fastest method: {fastest}");
    }
    maybe_write(&record);
}
