//! Fig. 6 — throughput (logs/second) of every method on LogHub-2.0-scale corpora,
//! including the "ByteBrain Sequential" (single core) and "ByteBrain w/o JIT"
//! (de-optimised single-core path, see EXPERIMENTS.md) variants.

use bench::{
    eval_all_methods, eval_bytebrain, eval_bytebrain_incremental, eval_bytebrain_stream,
    loghub2_scale, maybe_write,
};
use bytebrain::{AblationConfig, TrainConfig};
use datasets::{loghub2_dataset_names, LabeledDataset};
use eval::report::{fmt_sci, ExperimentRecord, TextTable};
use std::collections::HashMap;

fn main() {
    let scale = loghub2_scale();
    let datasets = loghub2_dataset_names();
    let mut throughput: HashMap<String, HashMap<String, f64>> = HashMap::new();
    for dataset in &datasets {
        eprintln!("[fig6] evaluating {dataset} at {scale} logs");
        let ds = LabeledDataset::loghub2(dataset, scale);
        // All baselines + default ByteBrain (multi-threaded).
        for outcome in eval_all_methods(&ds, true) {
            let name = if outcome.parser == "ByteBrain" {
                "ByteBrain".to_string()
            } else {
                outcome.parser.clone()
            };
            throughput
                .entry(name)
                .or_default()
                .insert(dataset.to_string(), outcome.throughput.logs_per_second);
        }
        // ByteBrain with 4 worker threads (the paper's parallel configuration).
        let parallel = eval_bytebrain(&ds, TrainConfig::default().with_parallelism(4), 0.6);
        throughput
            .entry("ByteBrain (parallel)".to_string())
            .or_default()
            .insert(dataset.to_string(), parallel.throughput.logs_per_second);
        // "w/o JIT": de-optimised single-core path (no deduplication fast path).
        let slow = eval_bytebrain(
            &ds,
            TrainConfig::default().with_ablation(AblationConfig {
                deduplication: false,
                balanced_grouping: false,
                early_stopping: false,
                ..AblationConfig::full()
            }),
            0.6,
        );
        throughput
            .entry("ByteBrain w/o JIT".to_string())
            .or_default()
            .insert(dataset.to_string(), slow.throughput.logs_per_second);
        // The sharded streaming ingestion engine: 4 shards, 4 pool workers.
        let streamed = eval_bytebrain_stream(&ds, 4, 4);
        throughput
            .entry("ByteBrain (stream 4x4)".to_string())
            .or_default()
            .insert(dataset.to_string(), streamed.throughput.logs_per_second);
        // Online incremental maintenance: cold-start train on half the corpus, stream
        // the rest with drift-triggered delta folding instead of full retrains.
        let incremental = eval_bytebrain_incremental(&ds, 4, 4);
        throughput
            .entry("ByteBrain (incremental 4x4)".to_string())
            .or_default()
            .insert(dataset.to_string(), incremental.throughput.logs_per_second);
    }

    let mut methods: Vec<String> = bench::paper_method_order()
        .iter()
        .map(|s| s.to_string())
        .collect();
    // Mirror the figure's extra rows: sequential (the default single-core run), w/o JIT,
    // and the parallel configuration.
    let bytebrain_idx = methods.iter().position(|m| m == "ByteBrain").unwrap();
    methods[bytebrain_idx] = "ByteBrain Sequential".to_string();
    methods.push("ByteBrain w/o JIT".to_string());
    methods.push("ByteBrain (parallel)".to_string());
    methods.push("ByteBrain (stream 4x4)".to_string());
    methods.push("ByteBrain (incremental 4x4)".to_string());
    // The single-threaded default run is stored under "ByteBrain".
    let sequential = throughput.remove("ByteBrain").unwrap_or_default();
    throughput.insert("ByteBrain Sequential".to_string(), sequential);

    let mut headers = vec!["Method".to_string()];
    headers.extend(datasets.iter().map(|d| d.to_string()));
    headers.push("Average".to_string());
    let mut table = TextTable::new(headers);
    let mut record = ExperimentRecord::new("fig6", "throughput per method per dataset");
    for method in &methods {
        let Some(per_dataset) = throughput.get(method) else {
            continue;
        };
        let mut row = vec![method.clone()];
        let mut values = Vec::new();
        for dataset in &datasets {
            let v = per_dataset.get(*dataset).copied().unwrap_or(0.0);
            values.push(v);
            row.push(fmt_sci(v));
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        row.push(fmt_sci(mean));
        record.insert(&format!("{method}_average"), mean);
        table.add_row(row);
    }
    println!(
        "Fig. 6: throughput (logs/second) on LogHub-2.0-style corpora ({scale} logs per dataset)\n"
    );
    println!("{}", table.render());
    maybe_write(&record);
}
