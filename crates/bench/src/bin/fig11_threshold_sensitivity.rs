//! Fig. 11 — parameter sensitivity: grouping accuracy as the query-time saturation
//! threshold sweeps from 0.1 to 0.9, on LogHub and LogHub-2.0-scale corpora.

use bench::{eval_bytebrain, loghub2_scale, maybe_write};
use bytebrain::TrainConfig;
use datasets::LabeledDataset;
use eval::report::{fmt2, ExperimentRecord, TextTable};

fn main() {
    let thresholds = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let datasets = [
        "Apache",
        "BGL",
        "HDFS",
        "HPC",
        "Hadoop",
        "HealthApp",
        "Mac",
        "OpenSSH",
        "OpenStack",
        "Spark",
        "Thunderbird",
        "Zookeeper",
    ];
    let scale = loghub2_scale().min(20_000);
    let mut record = ExperimentRecord::new("fig11", "GA vs saturation threshold");
    for (suite, use_loghub2) in [("LogHub", false), ("LogHub-2.0", true)] {
        let mut headers = vec!["Dataset".to_string()];
        headers.extend(thresholds.iter().map(|t| format!("{t:.1}")));
        let mut table = TextTable::new(headers);
        for dataset in datasets {
            let ds = if use_loghub2 {
                LabeledDataset::loghub2(dataset, scale)
            } else {
                LabeledDataset::loghub(dataset)
            };
            let mut row = vec![dataset.to_string()];
            for &threshold in &thresholds {
                let outcome = eval_bytebrain(&ds, TrainConfig::default(), threshold);
                row.push(fmt2(outcome.accuracy));
                record.insert(&format!("{suite}_{dataset}_{threshold}"), outcome.accuracy);
            }
            table.add_row(row);
            eprintln!("[fig11] finished {suite}/{dataset}");
        }
        println!("Fig. 11 ({suite}): group accuracy vs saturation threshold\n");
        println!("{}", table.render());
    }
    maybe_write(&record);
}
