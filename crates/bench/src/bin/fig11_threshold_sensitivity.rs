//! Fig. 11 — parameter sensitivity: grouping accuracy as the query-time saturation
//! threshold sweeps from 0.1 to 0.9, on LogHub and LogHub-2.0-scale corpora — plus
//! the query-latency companion: the same threshold sweep answered by the per-record
//! scan path and by the indexed path (postings aggregated up the saturation ladder)
//! on a 100k-record topic.

use bench::{eval_bytebrain, loghub2_scale, maybe_write};
use bytebrain::TrainConfig;
use datasets::LabeledDataset;
use eval::report::{fmt2, ExperimentRecord, TextTable};
use service::{LogTopic, QueryEngine, QueryOptions, TopicConfig};
use std::time::Instant;

fn main() {
    let thresholds = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let datasets = [
        "Apache",
        "BGL",
        "HDFS",
        "HPC",
        "Hadoop",
        "HealthApp",
        "Mac",
        "OpenSSH",
        "OpenStack",
        "Spark",
        "Thunderbird",
        "Zookeeper",
    ];
    let scale = loghub2_scale().min(20_000);
    let mut record = ExperimentRecord::new("fig11", "GA vs saturation threshold");
    for (suite, use_loghub2) in [("LogHub", false), ("LogHub-2.0", true)] {
        let mut headers = vec!["Dataset".to_string()];
        headers.extend(thresholds.iter().map(|t| format!("{t:.1}")));
        let mut table = TextTable::new(headers);
        for dataset in datasets {
            let ds = if use_loghub2 {
                LabeledDataset::loghub2(dataset, scale)
            } else {
                LabeledDataset::loghub(dataset)
            };
            let mut row = vec![dataset.to_string()];
            for &threshold in &thresholds {
                let outcome = eval_bytebrain(&ds, TrainConfig::default(), threshold);
                row.push(fmt2(outcome.accuracy));
                record.insert(&format!("{suite}_{dataset}_{threshold}"), outcome.accuracy);
            }
            table.add_row(row);
            eprintln!("[fig11] finished {suite}/{dataset}");
        }
        println!("Fig. 11 ({suite}): group accuracy vs saturation threshold\n");
        println!("{}", table.render());
    }
    query_latency_sweep(&thresholds, &mut record);
    maybe_write(&record);
}

/// The indexed row: answer the same threshold sweep on a 100k-record Apache topic
/// through the retained scan path and the indexed path (both return byte-identical
/// groups — the differential suite enforces it) and report per-sweep latency.
fn query_latency_sweep(thresholds: &[f64], record: &mut ExperimentRecord) {
    const TRAIN: usize = 4_000;
    const RECORDS: usize = 100_000;
    let ds = LabeledDataset::loghub2("Apache", TRAIN + RECORDS);
    let (train_part, stream_part) = ds.records.split_at(TRAIN);
    let mut topic = LogTopic::new(TopicConfig::new("fig11-query").with_volume_threshold(u64::MAX));
    topic.ingest(train_part);
    for chunk in stream_part.chunks(8_192) {
        topic.ingest(chunk);
    }
    eprintln!(
        "[fig11] query topic ready: {} records",
        topic.records().len()
    );

    let engine = QueryEngine::new(&topic);
    let snapshot = topic.query_snapshot();
    let options = |threshold: f64| QueryOptions {
        saturation_threshold: threshold,
        limit: usize::MAX,
    };
    // One untimed warm-up sweep per path so allocators and caches settle equally.
    for &t in thresholds {
        engine.group_by_template_scan(options(t));
        snapshot.group_by_template(options(t));
    }
    let timed = |f: &dyn Fn(f64) -> usize| -> (f64, usize) {
        let started = Instant::now();
        let mut groups = 0usize;
        for &t in thresholds {
            groups += f(t);
        }
        (started.elapsed().as_secs_f64() * 1_000.0, groups)
    };
    let (scan_ms, scan_groups) = timed(&|t| engine.group_by_template_scan(options(t)).len());
    let (indexed_ms, indexed_groups) = timed(&|t| snapshot.group_by_template(options(t)).len());
    assert_eq!(
        scan_groups, indexed_groups,
        "paths must agree on the group count"
    );
    let speedup = scan_ms / indexed_ms;

    let mut table = TextTable::new(vec![
        "Path".to_string(),
        "Sweep (ms)".to_string(),
        "Per query (ms)".to_string(),
        "Speedup".to_string(),
    ]);
    let per_query = thresholds.len() as f64;
    table.add_row(vec![
        "scan (per-record walk)".to_string(),
        fmt2(scan_ms),
        fmt2(scan_ms / per_query),
        "1.00".to_string(),
    ]);
    table.add_row(vec![
        "indexed (postings + ladder)".to_string(),
        fmt2(indexed_ms),
        fmt2(indexed_ms / per_query),
        fmt2(speedup),
    ]);
    println!(
        "Fig. 11 (indexed row): {}-threshold sweep latency on a {}k-record topic\n",
        thresholds.len(),
        RECORDS / 1_000
    );
    println!("{}", table.render());
    record.insert("query_scan_sweep_ms", scan_ms);
    record.insert("query_indexed_sweep_ms", indexed_ms);
    record.insert("query_indexed_speedup", speedup);
}
