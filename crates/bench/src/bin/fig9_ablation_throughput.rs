//! Fig. 9 — ablation study (efficiency): throughput of every ByteBrain variant on the four
//! largest datasets (BGL, HDFS, Spark, Thunderbird), with LILAC and UniParser as the
//! baseline reference points.

use baselines::SemanticKind;
use bench::{eval_bytebrain_variant, eval_semantic, loghub2_scale, maybe_write};
use bytebrain::AblationConfig;
use datasets::LabeledDataset;
use eval::report::{fmt_sci, ExperimentRecord, TextTable};

fn main() {
    let datasets = ["BGL", "HDFS", "Spark", "Thunderbird"];
    let scale = loghub2_scale();
    let variant_names = [
        "ByteBrain",
        "w/o early stopping",
        "w/o ensure saturation increase",
        "w/o position importance",
        "ordinal encoding",
        "w/o balanced group",
        "w/o variable in saturation",
        "w/o deduplication&related techs",
    ];
    let all_variants = AblationConfig::named_variants();
    let mut headers = vec!["Variant".to_string()];
    headers.extend(datasets.iter().map(|d| d.to_string()));
    let mut table = TextTable::new(headers);
    let mut record = ExperimentRecord::new("fig9", "ablation study: throughput");
    for name in variant_names {
        let (_, ablation) = all_variants
            .iter()
            .find(|(n, _)| *n == name)
            .expect("variant exists");
        let mut row = vec![name.to_string()];
        for dataset in datasets {
            let ds = LabeledDataset::loghub2(dataset, scale);
            let outcome = eval_bytebrain_variant(&ds, name, *ablation, 1);
            row.push(fmt_sci(outcome.throughput.logs_per_second));
            record.insert(
                &format!("{name}_{dataset}"),
                outcome.throughput.logs_per_second,
            );
        }
        table.add_row(row);
        eprintln!("[fig9] finished variant {name}");
    }
    // Reference baselines, as in the figure.
    for kind in [SemanticKind::Lilac, SemanticKind::UniParser] {
        let mut row = vec![kind.name().to_string()];
        for dataset in datasets {
            let ds = LabeledDataset::loghub2(dataset, scale.min(10_000));
            let outcome = eval_semantic(&ds, kind);
            row.push(fmt_sci(outcome.throughput.logs_per_second));
            record.insert(
                &format!("{}_{dataset}", kind.name()),
                outcome.throughput.logs_per_second,
            );
        }
        table.add_row(row);
    }
    println!("Fig. 9: ablation study — throughput (logs/second) on the four largest datasets ({scale} logs each)\n");
    println!("{}", table.render());
    maybe_write(&record);
}
