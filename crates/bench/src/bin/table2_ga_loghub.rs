//! Table 2 — Grouping Accuracy comparison on LogHub (2,000 logs per dataset, all methods).

use bench::{eval_all_methods, maybe_write, paper_method_order};
use datasets::{dataset_names, LabeledDataset};
use eval::report::{fmt2, ExperimentRecord, TextTable};
use std::collections::HashMap;

fn main() {
    let datasets = dataset_names();
    let methods = paper_method_order();
    // accuracy[method][dataset]
    let mut accuracy: HashMap<String, HashMap<String, f64>> = HashMap::new();
    for dataset in &datasets {
        eprintln!("[table2] evaluating {dataset}");
        let ds = LabeledDataset::loghub(dataset);
        for outcome in eval_all_methods(&ds, true) {
            accuracy
                .entry(outcome.parser.clone())
                .or_default()
                .insert(dataset.to_string(), outcome.accuracy);
        }
    }

    let mut headers: Vec<String> = vec!["Method".to_string()];
    headers.extend(datasets.iter().map(|d| d.to_string()));
    headers.push("Average".to_string());
    let mut table = TextTable::new(headers);
    let mut record = ExperimentRecord::new("table2", "grouping accuracy on LogHub");
    for method in &methods {
        let Some(per_dataset) = accuracy.get(*method) else {
            continue;
        };
        let mut row = vec![method.to_string()];
        let mut values = Vec::new();
        for dataset in &datasets {
            let value = per_dataset.get(*dataset).copied().unwrap_or(f64::NAN);
            values.push(value);
            row.push(fmt2(value));
        }
        let mean = values.iter().copied().sum::<f64>() / values.len() as f64;
        row.push(fmt2(mean));
        record.insert(&format!("{method}_average"), mean);
        table.add_row(row);
    }
    println!("Table 2: Group Accuracy on LogHub (synthetic, 2,000 logs per dataset)\n");
    println!("{}", table.render());
    maybe_write(&record);
}
