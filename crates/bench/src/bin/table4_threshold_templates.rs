//! Table 4 — templates obtained at different saturation thresholds on Android wakelock
//! logs, demonstrating query-time precision control.

use bench::maybe_write;
use bytebrain::{ByteBrainParser, TrainConfig};
use eval::report::ExperimentRecord;

/// Generate wakelock-style records mirroring the paper's Table 4 source logs.
fn wakelock_records() -> Vec<String> {
    let tags = [
        "View Lock",
        "*launch*",
        "WindowManager",
        "RILJ_ACK_WL",
        "AudioMix",
    ];
    let names = ["android", "systemui", "phone", "audioserver"];
    let mut records = Vec::new();
    for i in 0..600usize {
        let action = if i % 2 == 0 { "release" } else { "acquire" };
        let flag_word = if i % 2 == 0 { "flg" } else { "flags" };
        let ws = if i % 3 == 0 {
            "null".to_string()
        } else {
            format!("WS{{10{}}}", i % 90)
        };
        records.push(format!(
            "{action} lock={lock}, {flag_word}=0x{flg:x}, tag=\"{tag}\", name={name}, ws={ws}, uid={uid}, pid={pid}",
            lock = i * 37 % 4096,
            flg = i % 4,
            tag = tags[i % tags.len()],
            name = names[i % names.len()],
            uid = 10_000 + i % 50,
            pid = 1_000 + i % 900,
        ));
    }
    records
}

fn main() {
    let records = wakelock_records();
    let mut parser = ByteBrainParser::new(TrainConfig::default());
    parser.train(&records);
    let mut record = ExperimentRecord::new("table4", "templates at varying thresholds");
    println!(
        "Table 4: templates obtained by varying the saturation threshold (Android wakelock logs)\n"
    );
    for threshold in [0.05, 0.78, 0.9, 0.95] {
        let templates: Vec<String> = parser
            .templates_at_threshold(threshold)
            .into_iter()
            .filter(|t| t.contains("lock"))
            .collect();
        // Show the coarsest templates satisfying the threshold: resolve each leaf template
        // upward and deduplicate, which is what a query at this threshold would present.
        let mut shown: Vec<String> = Vec::new();
        for result in parser.match_batch(&records) {
            if let Some(node) = result.node {
                let text = parser.template_at_threshold(node, threshold);
                if !shown.contains(&text) {
                    shown.push(text);
                }
            }
        }
        shown.sort();
        record.insert(&format!("templates_at_{threshold}"), shown.len() as f64);
        println!(
            "Saturation threshold {threshold}: {} distinct templates",
            shown.len()
        );
        for t in shown.iter().take(10) {
            println!("    {t}");
        }
        if shown.len() > 10 {
            println!("    … ({} more)", shown.len() - 10);
        }
        println!();
        let _ = templates;
    }
    maybe_write(&record);
}
