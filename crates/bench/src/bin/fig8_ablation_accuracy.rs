//! Fig. 8 — ablation study (accuracy): grouping accuracy of every ByteBrain variant on
//! LogHub (2k logs/dataset) and LogHub-2.0-scale corpora.

use bench::{eval_bytebrain_variant, loghub2_scale, maybe_write};
use bytebrain::AblationConfig;
use datasets::{dataset_names, loghub2_dataset_names, LabeledDataset};
use eval::report::{fmt2, ExperimentRecord, TextTable};

fn main() {
    // The accuracy-relevant variants of Fig. 8.
    let variant_names = [
        "ByteBrain",
        "w/ naive match",
        "w/o variable in saturation",
        "w/o position importance",
        "w/o confidence factor",
        "random centroid selection",
    ];
    let all_variants = AblationConfig::named_variants();
    let scale = loghub2_scale().min(20_000);
    let mut table = TextTable::new(vec!["Variant", "LogHub avg GA", "LogHub-2.0 avg GA"]);
    let mut record = ExperimentRecord::new("fig8", "ablation study: accuracy");
    for name in variant_names {
        let (_, ablation) = all_variants
            .iter()
            .find(|(n, _)| *n == name)
            .expect("variant exists");
        let mut loghub_scores = Vec::new();
        for dataset in dataset_names() {
            let ds = LabeledDataset::loghub(dataset);
            loghub_scores.push(eval_bytebrain_variant(&ds, name, *ablation, 1).accuracy);
        }
        let mut loghub2_scores = Vec::new();
        for dataset in loghub2_dataset_names() {
            let ds = LabeledDataset::loghub2(dataset, scale);
            loghub2_scores.push(eval_bytebrain_variant(&ds, name, *ablation, 1).accuracy);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let a = mean(&loghub_scores);
        let b = mean(&loghub2_scores);
        record.insert(&format!("{name}_loghub"), a);
        record.insert(&format!("{name}_loghub2"), b);
        table.add_row(vec![name.to_string(), fmt2(a), fmt2(b)]);
        eprintln!("[fig8] finished variant {name}");
    }
    println!("Fig. 8: ablation study — grouping accuracy per variant\n");
    println!("{}", table.render());
    maybe_write(&record);
}
