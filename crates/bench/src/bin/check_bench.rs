//! Validate committed bench artifacts (CI gate for the bench plumbing).
//!
//! Usage: `check_bench [path...]` (default: `BENCH_ingest.json`,
//! `BENCH_storage.json`, `BENCH_query.json` and `BENCH_server.json`). Exits non-zero — failing the
//! CI step — when a file is missing, is not valid JSON, or lacks its required
//! rows with positive `records_per_sec` rates. Per-artifact requirements:
//!
//! - `BENCH_ingest.json`: `ingest_engines` rows `tree_walk`, `automaton`
//!   (hybrid encoding), `automaton_sparse`, `automaton_dense`,
//!   `automaton_cached`, `stream_tree_walk` and `stream_automaton`; on a full
//!   run the cold hybrid `automaton` row must clear 400k records/s and the
//!   end-to-end `stream_automaton` row 1.5M records/s — the compiled match
//!   path must stay decisively ahead of the tree walk, cold and streamed.
//! - `BENCH_storage.json`: `storage` rows `wal_append`, `segment_flush`,
//!   `recovery_replay`; on a full (non-smoke) run, `segment_flush` and
//!   `recovery_replay` must additionally clear 200k records/s — the durability
//!   tier must never become the ingest bottleneck, and recovery must replay
//!   (not retrain) its way back to serving.
//! - `BENCH_query.json`: `query_ast` rows `planned_selective`,
//!   `scan_selective`, `planned_cached`, `planned_group_by`, `scan_group_by`.
//! - `BENCH_server.json`: `server` rows `http_ingest` and `http_query` — the
//!   loopback HTTP front end (parse → admission → engine → response). No floor:
//!   the rates fold in socket and scheduling costs on whatever cores CI grants,
//!   but both rows must exist with positive rates.

use serde::Value;
use std::process::ExitCode;

/// Throughput floor for the durable tier's full-run flush/replay rows.
const STORAGE_FLOOR_RPS: f64 = 200_000.0;

/// Full-run floor for the cold compiled-automaton row (hybrid encoding,
/// every line masked + tokenized + matched, no line cache).
const COLD_AUTOMATON_FLOOR_RPS: f64 = 400_000.0;

/// Full-run floor for the end-to-end streaming engine under the automaton
/// (shards, batching, worker pool, per-worker caches, batch reordering).
const STREAM_AUTOMATON_FLOOR_RPS: f64 = 1_500_000.0;

fn fail(msg: &str) -> bool {
    eprintln!("[check_bench] FAIL: {msg}");
    false
}

fn rate_of(rows: &[Value], group: &str, name: &str) -> Option<f64> {
    rows.iter().find_map(|row| {
        match (
            row.get("group"),
            row.get("name"),
            row.get("records_per_sec"),
        ) {
            (Some(Value::String(g)), Some(Value::String(n)), Some(rate))
                if g == group && n == name =>
            {
                match rate {
                    Value::Float(f) => Some(*f),
                    Value::UInt(u) => Some(*u as f64),
                    _ => None,
                }
            }
            _ => None,
        }
    })
}

/// Validate one artifact; returns false (after printing the reason) on failure.
fn check_artifact(path: &str) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => return fail(&format!("cannot read {path}: {err}")),
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(doc) => doc,
        Err(err) => return fail(&format!("{path} is not valid JSON: {err}")),
    };
    let bench = match doc.get("bench") {
        Some(Value::String(name)) => name.clone(),
        other => return fail(&format!("{path}: unexpected `bench` field: {other:?}")),
    };
    let full_run = matches!(doc.get("mode"), Some(Value::String(mode)) if mode == "full");
    let Some(Value::Array(rows)) = doc.get("rows") else {
        return fail(&format!("{path}: missing `rows` array"));
    };

    // (group, row, full-run throughput floor) per artifact kind.
    let required: &[(&str, &str, f64)] = match bench.as_str() {
        "ingest" => &[
            ("ingest_engines", "tree_walk", 0.0),
            ("ingest_engines", "automaton", COLD_AUTOMATON_FLOOR_RPS),
            ("ingest_engines", "automaton_sparse", 0.0),
            ("ingest_engines", "automaton_dense", 0.0),
            ("ingest_engines", "automaton_cached", 0.0),
            ("ingest_engines", "stream_tree_walk", 0.0),
            (
                "ingest_engines",
                "stream_automaton",
                STREAM_AUTOMATON_FLOOR_RPS,
            ),
        ],
        "storage" => &[
            ("storage", "wal_append", 0.0),
            ("storage", "segment_flush", STORAGE_FLOOR_RPS),
            ("storage", "recovery_replay", STORAGE_FLOOR_RPS),
        ],
        "query" => &[
            ("query_ast", "planned_selective", 0.0),
            ("query_ast", "scan_selective", 0.0),
            ("query_ast", "planned_cached", 0.0),
            ("query_ast", "planned_group_by", 0.0),
            ("query_ast", "scan_group_by", 0.0),
        ],
        "server" => &[
            ("server", "http_ingest", 0.0),
            ("server", "http_query", 0.0),
        ],
        other => return fail(&format!("{path}: unknown bench kind {other:?}")),
    };

    for &(group, name, floor) in required {
        match rate_of(rows, group, name) {
            Some(rate) if rate > 0.0 && rate.is_finite() => {
                if full_run && rate < floor {
                    return fail(&format!(
                        "{path}: row {name} at {rate:.0} records/s is below the {floor:.0} floor"
                    ));
                }
                println!("[check_bench] {name:<18} {rate:>14.0} records/s");
            }
            Some(rate) => return fail(&format!("{path}: row {name} has bad rate {rate}")),
            None => {
                return fail(&format!(
                    "{path}: required {group} row missing or malformed: {name}"
                ))
            }
        }
    }
    println!("[check_bench] OK: {path} has all required {bench} rows");
    true
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    let paths = if paths.is_empty() {
        vec![
            "BENCH_ingest.json".to_string(),
            "BENCH_storage.json".to_string(),
            "BENCH_query.json".to_string(),
            "BENCH_server.json".to_string(),
        ]
    } else {
        paths
    };
    if paths.iter().all(|p| check_artifact(p)) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
