//! Validate a `BENCH_ingest.json` artifact (CI gate for the bench plumbing).
//!
//! Usage: `check_bench [path]` (default `BENCH_ingest.json`). Exits non-zero —
//! failing the CI step — when the file is missing, is not valid JSON, or lacks
//! the required `ingest_engines` rows (`tree_walk`, `automaton`,
//! `automaton_cached`) with positive `records_per_sec` rates.

use serde::Value;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("[check_bench] FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => return fail(&format!("cannot read {path}: {err}")),
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(doc) => doc,
        Err(err) => return fail(&format!("{path} is not valid JSON: {err}")),
    };
    match doc.get("bench") {
        Some(Value::String(name)) if name == "ingest" => {}
        other => return fail(&format!("unexpected `bench` field: {other:?}")),
    }
    let Some(Value::Array(rows)) = doc.get("rows") else {
        return fail("missing `rows` array");
    };

    let rate_of = |name: &str| -> Option<f64> {
        rows.iter().find_map(|row| {
            match (
                row.get("group"),
                row.get("name"),
                row.get("records_per_sec"),
            ) {
                (Some(Value::String(group)), Some(Value::String(n)), Some(rate))
                    if group == "ingest_engines" && n == name =>
                {
                    match rate {
                        Value::Float(f) => Some(*f),
                        Value::UInt(u) => Some(*u as f64),
                        _ => None,
                    }
                }
                _ => None,
            }
        })
    };

    let mut rates = Vec::new();
    for required in ["tree_walk", "automaton", "automaton_cached"] {
        match rate_of(required) {
            Some(rate) if rate > 0.0 && rate.is_finite() => rates.push((required, rate)),
            Some(rate) => return fail(&format!("row {required} has bad rate {rate}")),
            None => {
                return fail(&format!(
                    "required ingest_engines row missing or malformed: {required}"
                ))
            }
        }
    }
    for (name, rate) in &rates {
        println!("[check_bench] {name:<18} {rate:>14.0} records/s");
    }
    println!("[check_bench] OK: {path} has all required engine rows");
    ExitCode::SUCCESS
}
