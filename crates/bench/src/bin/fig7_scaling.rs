//! Fig. 7 — ByteBrain running time vs. number of logs: the relationship must be
//! near-linear across datasets.

use bench::{eval_bytebrain, maybe_write, DEFAULT_THRESHOLD};
use bytebrain::TrainConfig;
use datasets::LabeledDataset;
use eval::report::{ExperimentRecord, TextTable};

fn main() {
    let sizes = [5_000usize, 10_000, 20_000, 40_000, 80_000];
    let datasets = ["HDFS", "BGL", "Spark", "Apache", "Zookeeper"];
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(sizes.iter().map(|s| format!("{s} logs (s)")));
    headers.push("time ratio 80k/5k".to_string());
    let mut table = TextTable::new(headers);
    let mut record = ExperimentRecord::new("fig7", "running time vs number of logs");
    for dataset in datasets {
        let mut row = vec![dataset.to_string()];
        let mut first = 0.0f64;
        let mut last = 0.0f64;
        for (i, &n) in sizes.iter().enumerate() {
            let ds = LabeledDataset::loghub2(dataset, n);
            let outcome = eval_bytebrain(&ds, TrainConfig::default(), DEFAULT_THRESHOLD);
            row.push(format!("{:.3}", outcome.throughput.seconds));
            record.insert(
                &format!("{dataset}_{n}_seconds"),
                outcome.throughput.seconds,
            );
            if i == 0 {
                first = outcome.throughput.seconds;
            }
            last = outcome.throughput.seconds;
        }
        let ratio = if first > 0.0 { last / first } else { 0.0 };
        row.push(format!(
            "{ratio:.1}x (ideal linear: {:.1}x)",
            sizes[sizes.len() - 1] as f64 / sizes[0] as f64
        ));
        table.add_row(row);
        eprintln!("[fig7] finished {dataset}");
    }
    println!("Fig. 7: ByteBrain running time scaling with log volume\n");
    println!("{}", table.render());
    maybe_write(&record);
}
