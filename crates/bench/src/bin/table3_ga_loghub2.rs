//! Table 3 — Grouping Accuracy comparison on LogHub-2.0-scale corpora (all methods).

use bench::{eval_all_methods, loghub2_scale, maybe_write, paper_method_order};
use datasets::{loghub2_dataset_names, LabeledDataset};
use eval::report::{fmt2, ExperimentRecord, TextTable};
use std::collections::HashMap;

fn main() {
    let scale = loghub2_scale();
    let datasets = loghub2_dataset_names();
    let methods = paper_method_order();
    let mut accuracy: HashMap<String, HashMap<String, f64>> = HashMap::new();
    for dataset in &datasets {
        eprintln!("[table3] evaluating {dataset} at {scale} logs");
        let ds = LabeledDataset::loghub2(dataset, scale);
        for outcome in eval_all_methods(&ds, true) {
            accuracy
                .entry(outcome.parser.clone())
                .or_default()
                .insert(dataset.to_string(), outcome.accuracy);
        }
    }

    let mut headers: Vec<String> = vec!["Method".to_string()];
    headers.extend(datasets.iter().map(|d| d.to_string()));
    headers.push("Average".to_string());
    let mut table = TextTable::new(headers);
    let mut record = ExperimentRecord::new("table3", "grouping accuracy on LogHub-2.0 scale");
    for method in &methods {
        let Some(per_dataset) = accuracy.get(*method) else {
            continue;
        };
        let mut row = vec![method.to_string()];
        let mut values = Vec::new();
        for dataset in &datasets {
            let value = per_dataset.get(*dataset).copied().unwrap_or(f64::NAN);
            values.push(value);
            row.push(fmt2(value));
        }
        let mean = values.iter().copied().sum::<f64>() / values.len() as f64;
        row.push(fmt2(mean));
        record.insert(&format!("{method}_average"), mean);
        table.add_row(row);
    }
    println!("Table 3: Group Accuracy on LogHub-2.0-style corpora ({scale} logs per dataset)\n");
    println!("{}", table.render());
    maybe_write(&record);
}
