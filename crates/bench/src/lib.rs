//! `bench` — the experiment harness: one binary per table / figure of the paper (see
//! the "Reproducing the paper's tables and figures" section of `README.md` for the
//! full index) plus Criterion micro-benchmarks.
//!
//! Every binary prints the same rows/series the paper reports and honours two environment
//! variables so the full suite can be scaled to the available time budget:
//!
//! * `BYTEBRAIN_LOGHUB2_LOGS` — log count per LogHub-2.0-style dataset (default 20,000).
//! * `BYTEBRAIN_RESULTS_DIR` — when set, each experiment additionally writes a JSON record
//!   of its results into this directory.

use baselines::{LogParser, SemanticKind, SimulatedSemanticParser};
use bytebrain::{AblationConfig, ByteBrainParser, TrainConfig};
use datasets::LabeledDataset;
use eval::ga::grouping_accuracy;
use eval::report::ExperimentRecord;
use eval::throughput::{measure_with_result, ThroughputMeasurement};
use std::path::PathBuf;

/// Number of logs per LogHub-2.0-style dataset used by the experiments (paper: up to tens
/// of millions; default here keeps the full suite runnable on a laptop).
pub fn loghub2_scale() -> usize {
    std::env::var("BYTEBRAIN_LOGHUB2_LOGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Directory for machine-readable experiment results, when configured.
pub fn results_dir() -> Option<PathBuf> {
    std::env::var("BYTEBRAIN_RESULTS_DIR")
        .ok()
        .map(PathBuf::from)
}

/// Persist an experiment record when `BYTEBRAIN_RESULTS_DIR` is set.
pub fn maybe_write(record: &ExperimentRecord) {
    if let Some(dir) = results_dir() {
        match record.write_to(&dir) {
            Ok(path) => eprintln!("[results] wrote {}", path.display()),
            Err(err) => eprintln!("[results] failed to write record: {err}"),
        }
    }
}

/// Result of evaluating one parser on one dataset.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Parser name (paper spelling).
    pub parser: String,
    /// Dataset family.
    pub dataset: String,
    /// Grouping accuracy.
    pub accuracy: f64,
    /// Combined training + matching throughput.
    pub throughput: ThroughputMeasurement,
}

/// Evaluate ByteBrain on a corpus: train + match (the paper's throughput definition) and
/// score grouping accuracy at `threshold`.
pub fn eval_bytebrain(ds: &LabeledDataset, config: TrainConfig, threshold: f64) -> EvalOutcome {
    let (throughput, predicted) = measure_with_result(ds.len(), || {
        let mut parser = ByteBrainParser::new(config);
        parser.parse_with_threshold(&ds.records, threshold)
    });
    EvalOutcome {
        parser: "ByteBrain".to_string(),
        dataset: ds.name.clone(),
        accuracy: grouping_accuracy(&predicted, &ds.labels),
        throughput,
    }
}

/// Evaluate ByteBrain with the sharded streaming ingestion engine
/// ([`service::StreamIngestor`]): train once on the corpus, then stream the full corpus
/// through `shards` shard buffers matched by `workers` pool workers. Throughput keeps
/// the paper's definition (total logs over combined training + matching time); accuracy
/// scores the streamed template assignment against the ground-truth labels.
pub fn eval_bytebrain_stream(ds: &LabeledDataset, shards: usize, workers: usize) -> EvalOutcome {
    use service::{IngestConfig, StreamIngestor};
    use std::sync::Arc;
    let config = TrainConfig::default();
    // Clone the corpus outside the timed closure: the batch-path rows borrow their
    // records, so paying a per-record String clone inside the measurement would bias
    // the streaming rows downward.
    let owned_records: Vec<String> = ds.records.clone();
    let (throughput, predicted) = measure_with_result(ds.len(), || {
        let outcome = bytebrain::train::train(&ds.records, &config);
        let model_len = outcome.model.len();
        let model = Arc::new(outcome.model);
        let preprocessor = Arc::new(logtok::Preprocessor::new(config.preprocess.clone()));
        let ingest = IngestConfig::default()
            .with_shards(shards)
            .with_workers(workers)
            .with_batch_records(1_024);
        let mut ingestor = StreamIngestor::new(model, preprocessor, ingest);
        for record in owned_records {
            ingestor.push(record);
        }
        let report = ingestor.finish();
        // Records come back seq-ordered, so they align with the label vector. Every
        // unmatched record forms its own singleton group.
        report
            .records
            .iter()
            .map(|r| match r.node {
                Some(id) => id.0,
                None => model_len + r.seq as usize,
            })
            .collect::<Vec<usize>>()
    });
    EvalOutcome {
        parser: format!("ByteBrain (stream {shards}x{workers})"),
        dataset: ds.name.clone(),
        accuracy: grouping_accuracy(&predicted, &ds.labels),
        throughput,
    }
}

/// Evaluate ByteBrain with **online incremental model maintenance**: cold-start train
/// on the first half of the corpus, then stream the second half through a topic whose
/// model is maintained by drift-triggered delta folding
/// ([`service::MaintenancePolicy::Incremental`]) instead of stop-the-world retrains.
/// Throughput keeps the paper's definition (total logs over combined training +
/// matching time); accuracy scores the stored template assignment of the whole corpus
/// against the ground-truth labels.
pub fn eval_bytebrain_incremental(
    ds: &LabeledDataset,
    shards: usize,
    workers: usize,
) -> EvalOutcome {
    use bytebrain::incremental::DriftConfig;
    use service::{IngestConfig, LogTopic, MaintenancePolicy, TopicConfig};
    let half = ds.len() / 2;
    let warm: Vec<String> = ds.records[..half].to_vec();
    let stream: Vec<String> = ds.records[half..].to_vec();
    let (throughput, predicted) = measure_with_result(ds.len(), || {
        let mut config = TopicConfig::new("bench-incremental")
            .with_volume_threshold(u64::MAX)
            .with_maintenance(MaintenancePolicy::Incremental {
                drift: DriftConfig::default(),
                check_interval: 2_048,
            });
        config.train.parallelism = 1;
        let mut topic = LogTopic::new(config);
        topic.ingest(&warm); // cold start: initial (full) training
        let ingest = IngestConfig::default()
            .with_shards(shards)
            .with_workers(workers)
            .with_batch_records(1_024);
        topic.ingest_stream(stream.clone(), &ingest);
        let model_len = topic.model().len();
        topic
            .records()
            .iter()
            .enumerate()
            .map(|(i, stored)| match stored.template {
                Some(id) => id.0,
                None => model_len + i,
            })
            .collect::<Vec<usize>>()
    });
    EvalOutcome {
        parser: format!("ByteBrain (incremental {shards}x{workers})"),
        dataset: ds.name.clone(),
        accuracy: grouping_accuracy(&predicted, &ds.labels),
        throughput,
    }
}

/// Evaluate ByteBrain under a specific ablation variant.
pub fn eval_bytebrain_variant(
    ds: &LabeledDataset,
    variant_name: &str,
    ablation: AblationConfig,
    parallelism: usize,
) -> EvalOutcome {
    let config = TrainConfig::default()
        .with_ablation(ablation)
        .with_parallelism(parallelism);
    let mut outcome = eval_bytebrain(ds, config, DEFAULT_THRESHOLD);
    outcome.parser = variant_name.to_string();
    outcome
}

/// Evaluate one boxed baseline parser.
pub fn eval_baseline(ds: &LabeledDataset, parser: &mut dyn LogParser) -> EvalOutcome {
    let (throughput, predicted) = measure_with_result(ds.len(), || parser.parse(&ds.records));
    EvalOutcome {
        parser: parser.name().to_string(),
        dataset: ds.name.clone(),
        accuracy: grouping_accuracy(&predicted, &ds.labels),
        throughput,
    }
}

/// Evaluate a simulated semantic baseline (UniParser / LogPPT / LILAC).
pub fn eval_semantic(ds: &LabeledDataset, kind: SemanticKind) -> EvalOutcome {
    let mut parser = SimulatedSemanticParser::new(kind, ds.labels.clone());
    eval_baseline(ds, &mut parser)
}

/// The default threshold used by the accuracy experiments (Fig. 11 shows the metric is not
/// sensitive to the exact value; 0.6 sits in the stable region).
pub const DEFAULT_THRESHOLD: f64 = 0.6;

/// Parser names in the order the paper's tables list them.
pub fn paper_method_order() -> Vec<&'static str> {
    vec![
        "AEL",
        "Drain",
        "IPLoM",
        "LenMa",
        "LFA",
        "LogCluster",
        "LogMine",
        "Logram",
        "LogSig",
        "MoLFI",
        "SHISO",
        "SLCT",
        "Spell",
        "UniParser",
        "LogPPT",
        "LILAC",
        "ByteBrain",
    ]
}

/// Run every method of the paper on one dataset and return the outcomes in table order.
/// `include_semantic` controls whether the (slow) simulated semantic baselines run.
pub fn eval_all_methods(ds: &LabeledDataset, include_semantic: bool) -> Vec<EvalOutcome> {
    let mut outcomes = Vec::new();
    for mut parser in baselines::all_syntax_baselines() {
        outcomes.push(eval_baseline(ds, parser.as_mut()));
    }
    if include_semantic {
        for kind in [
            SemanticKind::UniParser,
            SemanticKind::LogPpt,
            SemanticKind::Lilac,
        ] {
            outcomes.push(eval_semantic(ds, kind));
        }
    }
    outcomes.push(eval_bytebrain(
        ds,
        TrainConfig::default(),
        DEFAULT_THRESHOLD,
    ));
    // Order the rows like the paper.
    let order = paper_method_order();
    outcomes.sort_by_key(|o| {
        order
            .iter()
            .position(|m| *m == o.parser)
            .unwrap_or(usize::MAX)
    });
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytebrain_eval_produces_sane_numbers() {
        let ds = LabeledDataset::loghub("Apache");
        let outcome = eval_bytebrain(&ds, TrainConfig::default(), DEFAULT_THRESHOLD);
        assert!(outcome.accuracy > 0.5);
        assert!(outcome.throughput.logs_per_second > 0.0);
        assert_eq!(outcome.dataset, "Apache");
    }

    #[test]
    fn baseline_eval_produces_sane_numbers() {
        let ds = LabeledDataset::loghub("Apache");
        let mut drain = baselines::drain::Drain::default();
        let outcome = eval_baseline(&ds, &mut drain);
        assert_eq!(outcome.parser, "Drain");
        assert!(outcome.accuracy > 0.3);
    }

    #[test]
    fn semantic_eval_is_accurate() {
        let ds = LabeledDataset::loghub("Proxifier");
        let mut parser = SimulatedSemanticParser::new(SemanticKind::Lilac, ds.labels.clone())
            .with_inference_cost(std::time::Duration::ZERO);
        let outcome = eval_baseline(&ds, &mut parser);
        assert!(outcome.accuracy > 0.9);
    }

    #[test]
    fn scale_env_default() {
        assert!(loghub2_scale() >= 1_000);
    }

    #[test]
    fn incremental_eval_produces_sane_numbers() {
        let ds = LabeledDataset::loghub("Apache");
        let outcome = eval_bytebrain_incremental(&ds, 2, 2);
        assert_eq!(outcome.parser, "ByteBrain (incremental 2x2)");
        assert!(outcome.accuracy > 0.5, "accuracy {}", outcome.accuracy);
        assert!(outcome.throughput.logs_per_second > 0.0);
    }

    #[test]
    fn ablation_variant_eval_renames_the_parser() {
        let ds = LabeledDataset::loghub("Proxifier");
        let outcome = eval_bytebrain_variant(
            &ds,
            "w/o position importance",
            AblationConfig {
                position_importance: false,
                ..AblationConfig::full()
            },
            1,
        );
        assert_eq!(outcome.parser, "w/o position importance");
        assert!(outcome.accuracy > 0.3);
    }
}
