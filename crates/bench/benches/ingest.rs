//! Micro-benchmarks of the ingestion paths: line-at-a-time `LogTopic::ingest`, batched
//! `LogTopic::ingest`, and the sharded streaming engine (`StreamIngestor`), plus the
//! underlying matcher fast paths (allocating vs. zero-copy scratch vs. pooled lean
//! batches), plus the query paths (per-record scan vs. indexed postings+ladder vs.
//! the LRU-cached indexed path) on a 100k-record topic, plus the match-engine
//! comparison (tree walker vs compiled automaton, cold vs line-cached) behind
//! `BENCH_ingest.json`. These are the measurements behind the "batched streaming
//! beats line-at-a-time", "indexed queries stop scanning records" and "the
//! automaton outruns the tree walk" claims — run with `cargo bench --bench ingest`.
//!
//! This bench has a custom `main`: after the timed runs it drains the harness's
//! measurement registry and writes the machine-readable `BENCH_ingest.json`
//! artifact (path override: `BYTEBRAIN_BENCH_OUT`) plus the composed-query
//! artifact `BENCH_query.json` (the `query_ast` group; override:
//! `BYTEBRAIN_BENCH_QUERY_OUT`). `BYTEBRAIN_BENCH_SMOKE=1` runs only the
//! engine-comparison and query-AST groups at reduced scale — CI uses it to
//! prove the artifact plumbing without paying for a full benchmark run.

use bytebrain::incremental::DriftConfig;
use bytebrain::matcher::{match_record, match_record_with_scratch, match_view};
use bytebrain::train::train;
use bytebrain::{CompiledMatcher, DfaEncoding, MatchCache, MatchEngine, ParserModel, TrainConfig};
use criterion::{BatchSize, Criterion, Throughput};
use datasets::LabeledDataset;
use logtok::{Preprocessor, TokenScratch};
use service::{
    IngestConfig, LogTopic, MaintenancePolicy, QueryEngine, QueryOptions, StreamIngestor,
    TopicConfig,
};
use std::sync::Arc;

const TRAIN_LINES: usize = 4_000;
const STREAM_LINES: usize = 16_000;

fn corpus() -> (Vec<String>, Vec<String>) {
    let ds = LabeledDataset::loghub2("Apache", TRAIN_LINES + STREAM_LINES);
    let (train_part, stream_part) = ds.records.split_at(TRAIN_LINES);
    (train_part.to_vec(), stream_part.to_vec())
}

/// A topic trained on the warm-up corpus, with a volume threshold high enough that the
/// measured ingestion never triggers retraining.
fn trained_topic(train_part: &[String]) -> LogTopic {
    let mut topic = LogTopic::new(TopicConfig::new("bench").with_volume_threshold(u64::MAX));
    topic.ingest(train_part);
    topic
}

fn bench_topic_ingest_paths(c: &mut Criterion) {
    let (train_part, stream_part) = corpus();
    let mut group = c.benchmark_group("topic_ingest");
    group.throughput(Throughput::Elements(stream_part.len() as u64));
    group.sample_size(10);

    group.bench_function("line_at_a_time", |b| {
        b.iter_batched(
            || trained_topic(&train_part),
            |mut topic| {
                for record in &stream_part {
                    topic.ingest(std::slice::from_ref(record));
                }
                topic.stats().total_records
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("batched_1024", |b| {
        b.iter_batched(
            || trained_topic(&train_part),
            |mut topic| {
                for chunk in stream_part.chunks(1_024) {
                    topic.ingest(chunk);
                }
                topic.stats().total_records
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("stream_4_shards", |b| {
        b.iter_batched(
            // Clone the corpus in setup (untimed): the competing rows borrow theirs.
            || (trained_topic(&train_part), stream_part.clone()),
            |(mut topic, records)| {
                let result = topic.ingest_stream(
                    records,
                    &IngestConfig::default()
                        .with_shards(4)
                        .with_batch_records(1_024),
                );
                result.outcome.matched
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

fn bench_matcher_paths(c: &mut Criterion) {
    let (train_part, stream_part) = corpus();
    let config = TrainConfig::default();
    let model: Arc<ParserModel> = Arc::new(train(&train_part, &config).model);
    let preprocessor = Arc::new(Preprocessor::new(config.preprocess.clone()));

    let mut group = c.benchmark_group("matcher");
    group.throughput(Throughput::Elements(stream_part.len() as u64));
    group.sample_size(10);

    group.bench_function("match_record_allocating", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for record in &stream_part {
                if match_record(&model, &preprocessor, record).is_matched() {
                    matched += 1;
                }
            }
            matched
        })
    });

    group.bench_function("match_record_scratch", |b| {
        b.iter(|| {
            let mut scratch = TokenScratch::new();
            let mut matched = 0usize;
            for record in &stream_part {
                if match_record_with_scratch(&model, &preprocessor, record, &mut scratch)
                    .is_matched()
                {
                    matched += 1;
                }
            }
            matched
        })
    });

    group.bench_function("match_view_zero_copy", |b| {
        b.iter(|| {
            let mut scratch = TokenScratch::new();
            let mut matched = 0usize;
            for record in &stream_part {
                let view = preprocessor.token_view(record, &mut scratch);
                if match_view(&model, &view).is_some() {
                    matched += 1;
                }
            }
            matched
        })
    });

    group.bench_function("stream_ingestor_4x4", |b| {
        b.iter(|| {
            let mut ingestor = StreamIngestor::new(
                Arc::clone(&model),
                Arc::clone(&preprocessor),
                IngestConfig::default()
                    .with_shards(4)
                    .with_workers(4)
                    .with_batch_records(1_024),
            );
            for record in &stream_part {
                ingestor.push(record.as_str());
            }
            ingestor.finish().matched()
        })
    });

    group.finish();
}

/// A drifting stream: the trained family early, a novel family ramping in late —
/// the workload where model maintenance policy dominates sustained throughput.
fn drifting_stream(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            // The second half progressively switches to a family the warm-up model
            // has never seen.
            if i * 2 > n && (i * 7) % 10 < 6 {
                format!(
                    "gpu worker {} evicted tensor block {} after {} allocations",
                    i % 8,
                    i % 500,
                    1 + i % 9_999
                )
            } else {
                format!(
                    "GET /static/asset-{}.js served {} bytes in {}us",
                    i % 64,
                    100 + i % 9_000,
                    i % 800
                )
            }
        })
        .collect()
}

/// Model maintenance under drift: full retrain (stop-the-world pauses at every
/// volume trigger, plus a re-match pass over everything stored) versus incremental
/// delta maintenance (drift-triggered folding of the unmatched buffer, stable node
/// ids, mid-stream hot swap). Same drifting stream, same volume trigger — the
/// throughput gap *is* the retrain pause disappearing from the trace.
fn bench_maintenance_under_drift(c: &mut Criterion) {
    let warm = drifting_stream(4_000)[..2_000].to_vec(); // trained family only
    let stream = drifting_stream(16_000);
    let mut group = c.benchmark_group("maintenance_drift");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    let ingest = IngestConfig::default()
        .with_shards(4)
        .with_workers(4)
        .with_batch_records(1_024);

    group.bench_function("full_retrain", |b| {
        b.iter_batched(
            || {
                let mut topic =
                    LogTopic::new(TopicConfig::new("drift-full").with_volume_threshold(4_000));
                topic.ingest(&warm);
                (topic, stream.clone())
            },
            |(mut topic, records)| {
                let result = topic.ingest_stream(records, &ingest);
                assert!(topic.stats().training_runs > 1, "retrain must have fired");
                result.outcome.matched
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("incremental", |b| {
        b.iter_batched(
            || {
                let mut topic = LogTopic::new(
                    TopicConfig::new("drift-inc")
                        .with_volume_threshold(4_000)
                        .with_maintenance(MaintenancePolicy::Incremental {
                            drift: DriftConfig::default(),
                            check_interval: 2_048,
                        }),
                );
                topic.ingest(&warm);
                (topic, stream.clone())
            },
            |(mut topic, records)| {
                let result = topic.ingest_stream(records, &ingest);
                let stats = topic.stats();
                assert_eq!(stats.training_runs, 1, "no stop-the-world retrain");
                assert!(stats.maintenance_runs >= 1, "maintenance must have fired");
                result.outcome.matched
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

/// The query paths on a 100k-record topic, each sweeping the full 10-stop threshold
/// slider (the production UI's interaction pattern). `scan` is the retained
/// per-record reference: every query walks every stored record's ancestor chain.
/// `indexed` aggregates per-node postings up the precomputed saturation ladder —
/// byte-identical output (enforced by the differential suite) without touching the
/// record store. `indexed_cached` adds the LRU result cache the serving path uses.
fn bench_query_paths(c: &mut Criterion) {
    const QUERY_TRAIN: usize = 4_000;
    const QUERY_RECORDS: usize = 100_000;
    let ds = LabeledDataset::loghub2("Apache", QUERY_TRAIN + QUERY_RECORDS);
    let (train_part, stream_part) = ds.records.split_at(QUERY_TRAIN);
    let mut topic = LogTopic::new(TopicConfig::new("query-bench").with_volume_threshold(u64::MAX));
    topic.ingest(train_part);
    let warmup = topic.records().len();
    for chunk in stream_part.chunks(8_192) {
        topic.ingest(chunk);
    }
    assert_eq!(topic.records().len() - warmup, QUERY_RECORDS);

    let thresholds: Vec<f64> = (0..10).map(|i| 0.05 + i as f64 * 0.1).collect();
    let mut group = c.benchmark_group("query");
    // Each iteration answers one full slider sweep (10 queries).
    group.throughput(Throughput::Elements(thresholds.len() as u64));
    group.sample_size(10);

    group.bench_function("scan_100k", |b| {
        let engine = QueryEngine::new(&topic);
        b.iter(|| {
            let mut total_groups = 0usize;
            for &threshold in &thresholds {
                total_groups += engine
                    .group_by_template_scan(QueryOptions {
                        saturation_threshold: threshold,
                        limit: usize::MAX,
                    })
                    .len();
            }
            total_groups
        })
    });

    group.bench_function("indexed_100k", |b| {
        // The snapshot path is the uncached indexed query (postings + ladder only).
        let snapshot = topic.query_snapshot();
        b.iter(|| {
            let mut total_groups = 0usize;
            for &threshold in &thresholds {
                total_groups += snapshot
                    .group_by_template(QueryOptions {
                        saturation_threshold: threshold,
                        limit: usize::MAX,
                    })
                    .len();
            }
            total_groups
        })
    });

    group.bench_function("indexed_cached_100k", |b| {
        b.iter(|| {
            let mut total_groups = 0usize;
            for &threshold in &thresholds {
                total_groups += topic
                    .query(QueryOptions {
                        saturation_threshold: threshold,
                        limit: usize::MAX,
                    })
                    .len();
            }
            total_groups
        })
    });

    group.finish();
}

/// A repetitive stream: `n` lines drawn from `distinct` exact line shapes, in a
/// scrambled but deterministic order — the workload class production log topics
/// overwhelmingly are, and the one the per-worker match cache targets.
fn repetitive_stream(n: usize, distinct: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let k = (i.wrapping_mul(2_654_435_761)) % distinct;
            format!(
                "GET /api/items/{} took {}ms user u{}",
                k % 40,
                (k * 7) % 900,
                k % 25
            )
        })
        .collect()
}

/// The match-engine comparison behind `BENCH_ingest.json`: the same stream
/// through (a) the tree walker, (b) the compiled automaton cold (every line
/// preprocessed + matched through the DFA) under each state encoding — sparse
/// binary-search edges, fully dense rows, and the shipping hybrid — and (c)
/// the automaton behind a warm per-worker line cache. Rows are records/s; the
/// differential suite proves every engine produces byte-identical assignments,
/// so the rates are directly comparable.
fn bench_ingest_engines(c: &mut Criterion) {
    let smoke = smoke_mode();
    let (train_lines, lines) = if smoke { (600, 2_000) } else { (4_000, 16_000) };
    let ds = LabeledDataset::loghub2("Apache", train_lines);
    let mut warm = ds.records;
    // Make sure the bench stream's own shapes are trained in, so the rows
    // measure matching, not the unmatched slow path.
    warm.extend(repetitive_stream(train_lines, 512));
    let config = TrainConfig::default();
    let model = train(&warm, &config).model;
    let preprocessor = Preprocessor::new(config.preprocess.clone());
    let compiled = CompiledMatcher::compile(&model);
    let stream = repetitive_stream(lines, 512);

    let mut group = c.benchmark_group("ingest_engines");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(if smoke { 3 } else { 15 });

    group.bench_function("tree_walk", |b| {
        b.iter(|| {
            let mut scratch = TokenScratch::new();
            let mut matched = 0usize;
            for record in &stream {
                let view = preprocessor.token_view(record, &mut scratch);
                if match_view(&model, &view).is_some() {
                    matched += 1;
                }
            }
            matched
        })
    });

    // Cold path per encoding: `automaton` is the shipping hybrid; the sparse
    // and dense rows bracket it (pure binary-search edges vs a dense row for
    // every state).
    for (name, engine) in [
        ("automaton", &compiled),
        (
            "automaton_sparse",
            &CompiledMatcher::compile_with_encoding(&model, DfaEncoding::Sparse),
        ),
        (
            "automaton_dense",
            &CompiledMatcher::compile_with_encoding(&model, DfaEncoding::Dense),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut scratch = TokenScratch::new();
                let mut matched = 0usize;
                for record in &stream {
                    let view = preprocessor.token_view(record, &mut scratch);
                    if engine.match_view(&view).is_some() {
                        matched += 1;
                    }
                }
                matched
            })
        });
    }

    {
        let mut cache = MatchCache::default();
        let mut scratch = TokenScratch::new();
        // Warm the cache once (untimed): the row measures the steady state a
        // long-lived worker sees on a repetitive stream.
        for record in &stream {
            cache.match_record(&compiled, &preprocessor, &mut scratch, record);
        }
        group.bench_function("automaton_cached", |b| {
            b.iter(|| {
                let mut matched = 0usize;
                for record in &stream {
                    if cache
                        .match_record(&compiled, &preprocessor, &mut scratch, record)
                        .is_some()
                    {
                        matched += 1;
                    }
                }
                matched
            })
        });
        let (hits, misses) = cache.stats();
        assert!(
            hits > misses,
            "cached row must run hit-dominated ({hits} hits / {misses} misses)"
        );
    }

    // End-to-end topic rows: the full streaming engine (shards, batching,
    // worker pool, stats) under each engine config.
    for (name, engine) in [
        ("stream_tree_walk", MatchEngine::TreeWalk),
        ("stream_automaton", MatchEngine::Automaton),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut topic = LogTopic::new(
                        TopicConfig::new("engine-bench")
                            .with_volume_threshold(u64::MAX)
                            .with_match_engine(engine),
                    );
                    topic.ingest(&warm);
                    (topic, stream.clone())
                },
                |(mut topic, records)| {
                    let result = topic.ingest_stream(
                        records,
                        &IngestConfig::default()
                            .with_shards(4)
                            .with_workers(4)
                            .with_batch_records(1_024),
                    );
                    result.outcome.matched
                },
                BatchSize::PerIteration,
            )
        });
    }

    group.finish();
}

/// The composed-query path on a durable topic behind `BENCH_query.json`: a
/// selective variable-value query executed through (a) the planned push-down
/// path — per-segment column summaries prove most segments cannot contain the
/// value and skip them before any record is touched — (b) the naive scan
/// oracle, and (c) the serving path with the plan-fingerprint-keyed LRU cache
/// in front; plus the predicate-free `group_by` on both paths as the
/// no-pruning baseline. The rare value only occurs in the earliest slice of
/// the stream, so on the full run the summaries prune all but the first
/// segments — that gap *is* the push-down win the JSON records. The
/// differential suite proves planned ≡ scan byte-identically, so the rates
/// are directly comparable.
fn bench_query_ast(c: &mut Criterion, smoke: bool) {
    use bytebrain::{Predicate, Query};
    use service::{QueryValue, StorageConfig};

    let (train_lines, records, segment_records) = if smoke {
        (600, 4_000, 256)
    } else {
        (4_000, 100_000, 4_096)
    };

    // Auth-style records with real variables (user id, session). The rare user
    // appears only in the first 500 streamed records; everything later is
    // provably free of it, which is exactly what the segment summaries encode.
    let auth = |i: usize, rare: bool| -> String {
        let user = if rare {
            "u-rare".to_string()
        } else {
            format!("u{}", i % 40)
        };
        format!(
            "user {} logged {} from 10.0.{}.{} session s{}",
            user,
            if i.is_multiple_of(3) { "out" } else { "in" },
            i % 16,
            i % 250,
            i
        )
    };

    let dir = std::env::temp_dir().join(format!("bb-bench-query-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale bench dir");
    }
    let storage = StorageConfig::default()
        .with_segment_records(segment_records)
        .with_fsync(false);
    let mut topic = LogTopic::durable(
        TopicConfig::new("query-ast-bench").with_volume_threshold(u64::MAX),
        &dir,
        storage,
    )
    .expect("create durable bench topic");
    let warm: Vec<String> = (0..train_lines).map(|i| auth(i, false)).collect();
    topic.ingest(&warm);
    let stream: Vec<String> = (0..records).map(|i| auth(i, i < 500)).collect();
    for chunk in stream.chunks(8_192) {
        topic.ingest(chunk);
    }

    let selective = Query::distribution()
        .filter(Predicate::variable_equals("u-rare"))
        .plan()
        .expect("valid plan");
    let group_all = Query::group_by().plan().expect("valid plan");

    let engine = QueryEngine::new(&topic);
    // Sanity (untimed): the two paths agree, and the rare value really is in
    // the store — rates below measure identical, non-empty answers.
    let planned = engine.execute(&selective);
    assert_eq!(
        planned,
        engine.execute_scan(&selective),
        "planned path diverged from scan oracle"
    );
    let matched: u64 = match &planned {
        QueryValue::Distribution(counts) => counts.iter().map(|(_, c)| *c).sum(),
        other => panic!("distribution plan yields a distribution, got {other:?}"),
    };
    assert!(
        matched >= 400,
        "selective query must hit the rare slice ({matched} records)"
    );

    let mut group = c.benchmark_group("query_ast");
    group.throughput(Throughput::Elements(topic.records().len() as u64));
    group.sample_size(if smoke { 3 } else { 15 });

    group.bench_function("planned_selective", |b| {
        b.iter(|| engine.execute(&selective))
    });
    group.bench_function("scan_selective", |b| {
        b.iter(|| engine.execute_scan(&selective))
    });
    group.bench_function("planned_cached", |b| b.iter(|| topic.execute(&selective)));
    group.bench_function("planned_group_by", |b| {
        b.iter(|| engine.execute(&group_all))
    });
    group.bench_function("scan_group_by", |b| {
        b.iter(|| engine.execute_scan(&group_all))
    });

    group.finish();
    drop(topic);
    std::fs::remove_dir_all(&dir).ok();
}

fn smoke_mode() -> bool {
    std::env::var("BYTEBRAIN_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Render one drained measurement set as a bench artifact document.
fn write_artifact(out: &str, kind: &str, smoke: bool, measurements: &[criterion::Measurement]) {
    use serde::Value;

    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            let mut fields = vec![
                (
                    "group".to_string(),
                    Value::String(m.group.clone().unwrap_or_default()),
                ),
                ("name".to_string(), Value::String(m.name.clone())),
                ("mean_ns".to_string(), Value::UInt(m.mean_ns as u64)),
                ("min_ns".to_string(), Value::UInt(m.min_ns as u64)),
            ];
            if let Some(rate) = m.elements_per_sec() {
                fields.push(("records_per_sec".to_string(), Value::Float(rate)));
            }
            Value::Object(fields)
        })
        .collect();
    let doc = Value::Object(vec![
        ("bench".to_string(), Value::String(kind.to_string())),
        (
            "mode".to_string(),
            Value::String(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("rows".to_string(), Value::Array(rows)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("bench rows serialize");
    std::fs::write(out, json + "\n").expect("write bench artifact");
    println!("[bench] wrote {out}");
}

/// Split the drained measurement registry into the `BENCH_ingest.json` and
/// `BENCH_query.json` artifacts (the `query_ast` group goes to the latter).
fn write_bench_json(smoke: bool) {
    // Anchor the defaults at the workspace root (bench binaries run with the
    // package dir as cwd), so the committed artifact paths are stable.
    let ingest_out = std::env::var("BYTEBRAIN_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_ingest.json", env!("CARGO_MANIFEST_DIR")));
    let query_out = std::env::var("BYTEBRAIN_BENCH_QUERY_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_query.json", env!("CARGO_MANIFEST_DIR")));
    let (query_rows, ingest_rows): (Vec<_>, Vec<_>) = criterion::take_measurements()
        .into_iter()
        .partition(|m| m.group.as_deref() == Some("query_ast"));
    write_artifact(&ingest_out, "ingest", smoke, &ingest_rows);
    write_artifact(&query_out, "query", smoke, &query_rows);
}

fn main() {
    let smoke = smoke_mode();
    let mut criterion = Criterion::default();
    bench_ingest_engines(&mut criterion);
    bench_query_ast(&mut criterion, smoke);
    if !smoke {
        bench_topic_ingest_paths(&mut criterion);
        bench_matcher_paths(&mut criterion);
        bench_maintenance_under_drift(&mut criterion);
        bench_query_paths(&mut criterion);
    }
    write_bench_json(smoke);
}
