//! Criterion micro-benchmarks for the hot paths of the parsing pipeline: tokenization,
//! hash vs. ordinal encoding, positional-similarity distance, training and online
//! matching. These complement the experiment binaries (which reproduce the paper's tables
//! and figures end to end).

use bytebrain::distance::ClusterProfile;
use bytebrain::matcher::match_record;
use bytebrain::train::train;
use bytebrain::TrainConfig;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use datasets::LabeledDataset;
use logtok::{hash_token, EncodedLog, OrdinalEncoder, Preprocessor, Tokenizer};

fn sample_records(n: usize) -> Vec<String> {
    LabeledDataset::loghub2("HDFS", n).records
}

fn bench_tokenizer(c: &mut Criterion) {
    let records = sample_records(2_000);
    let tokenizer = Tokenizer::default_rules();
    let bytes: u64 = records.iter().map(|r| r.len() as u64).sum();
    let mut group = c.benchmark_group("preprocessing");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("tokenize_2k_records", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for r in &records {
                total += tokenizer.tokenize(r).len();
            }
            total
        })
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let records = sample_records(2_000);
    let preprocessor = Preprocessor::default_pipeline();
    let token_lists: Vec<Vec<String>> = records.iter().map(|r| preprocessor.tokens_of(r)).collect();
    let mut group = c.benchmark_group("encoding");
    group.bench_function("hash_encoding", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for tokens in &token_lists {
                for t in tokens {
                    acc ^= hash_token(t);
                }
            }
            acc
        })
    });
    group.bench_function("ordinal_encoding", |b| {
        b.iter_batched(
            OrdinalEncoder::new,
            |mut encoder| {
                let mut acc = 0u64;
                for tokens in &token_lists {
                    for id in encoder.encode_sequence(tokens) {
                        acc ^= id;
                    }
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_distance(c: &mut Criterion) {
    let logs: Vec<EncodedLog> = (0..64)
        .map(|i| {
            EncodedLog::from_tokens(&[
                "Receiving",
                "block",
                &format!("blk_{i}"),
                "src",
                &format!("10.0.0.{}", i % 8),
                "dest",
                &format!("10.0.0.{}", (i + 1) % 8),
            ])
        })
        .collect();
    let profile = ClusterProfile::from_logs(7, logs.iter());
    let candidate = EncodedLog::from_tokens(&[
        "Receiving",
        "block",
        "blk_999",
        "src",
        "10.0.0.3",
        "dest",
        "10.0.0.4",
    ]);
    c.bench_function("positional_similarity_distance", |b| {
        b.iter(|| profile.distance(&candidate, true))
    });
}

fn bench_training_and_matching(c: &mut Criterion) {
    let records = sample_records(5_000);
    let config = TrainConfig::default();
    let mut group = c.benchmark_group("parser");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);
    group.bench_function("train_5k_hdfs", |b| b.iter(|| train(&records, &config)));
    let outcome = train(&records, &config);
    let preprocessor = Preprocessor::default_pipeline();
    group.throughput(Throughput::Elements(1));
    group.bench_function("online_match_single_log", |b| {
        b.iter(|| {
            match_record(
                &outcome.model,
                &preprocessor,
                "Receiving block blk_42 src /10.0.0.1:50010 dest /10.0.0.2:50010",
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tokenizer,
    bench_encoding,
    bench_distance,
    bench_training_and_matching
);
criterion_main!(benches);
