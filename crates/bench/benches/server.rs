//! Loopback throughput of the HTTP front end: ingest batches and planned AST
//! queries over a real socket, through the full stack — `minihttp` parsing,
//! admission control, the engine thread, and the `ServiceManager` underneath.
//! Run with `cargo bench --bench server`.
//!
//! Like the other benches, a custom `main` drains the harness's measurement
//! registry afterwards and writes `BENCH_server.json` (path override:
//! `BYTEBRAIN_BENCH_OUT`); `BYTEBRAIN_BENCH_SMOKE=1` runs at reduced scale for CI
//! plumbing checks. No throughput floor is enforced — the loopback numbers fold in
//! HTTP parsing and scheduling on whatever cores CI grants — but `check_bench`
//! requires both rows to exist with positive rates.

use criterion::{Criterion, Throughput};
use minihttp::ClientConn;
use server::{serve, ServerConfig};
use service::api::IngestRequest;
use service::ServiceManager;

fn smoke_mode() -> bool {
    std::env::var("BYTEBRAIN_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

fn lines(start: usize, n: usize) -> Vec<String> {
    (start..start + n)
        .map(|i| {
            format!(
                "job {} finished on host node-{:02} in {}ms",
                i,
                i % 16,
                i % 700
            )
        })
        .collect()
}

fn bench_server(c: &mut Criterion, smoke: bool) {
    let batch = if smoke { 512 } else { 8_192 };

    // Warm the topic before serving: the cold-start training run should not be
    // inside the timed loop.
    let mut manager = ServiceManager::new();
    manager.ingest("bench", "logs", &lines(0, 4_096));
    let server = serve(manager, ServerConfig::default()).expect("serve");
    let mut client = ClientConn::connect(server.addr()).expect("connect");

    let mut group = c.benchmark_group("server");
    group.sample_size(10);

    // One POST /ingest per iteration: JSON body parse, admission, engine apply,
    // JSON response — `batch` records per round trip.
    group.throughput(Throughput::Elements(batch as u64));
    let mut offset = 4_096;
    group.bench_function("http_ingest", |b| {
        b.iter(|| {
            let body = serde_json::to_string(&IngestRequest {
                records: lines(offset, batch),
            })
            .expect("render body");
            offset += batch;
            let response = client
                .request_with_headers(
                    "POST",
                    "/v1/bench/logs/ingest",
                    &[("Content-Type", "application/json")],
                    body.as_bytes(),
                )
                .expect("ingest round-trips");
            assert_eq!(response.status, 200, "{}", response.body_str());
            response.body.len()
        })
    });

    // One planned AST query per iteration (predicate + top-k over the indexed
    // path); the elements rate is queries per second.
    group.throughput(Throughput::Elements(1));
    let query_body = r#"{"topic":"logs","query":{"predicate":{"template_matches":"job <*> finished"},"threshold":0.5,"aggregate":{"top_k":5}}}"#;
    group.bench_function("http_query", |b| {
        b.iter(|| {
            let response = client
                .request_with_headers(
                    "POST",
                    "/v1/bench/query",
                    &[("Content-Type", "application/json")],
                    query_body.as_bytes(),
                )
                .expect("query round-trips");
            assert_eq!(response.status, 200, "{}", response.body_str());
            response.body.len()
        })
    });

    group.finish();
    server.shutdown();
}

/// Render the drained measurement registry as the `BENCH_server.json` artifact.
fn write_bench_json(smoke: bool) {
    use serde::Value;

    let out = std::env::var("BYTEBRAIN_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_server.json", env!("CARGO_MANIFEST_DIR")));
    let rows: Vec<Value> = criterion::take_measurements()
        .into_iter()
        .map(|m| {
            let mut fields = vec![
                (
                    "group".to_string(),
                    Value::String(m.group.clone().unwrap_or_default()),
                ),
                ("name".to_string(), Value::String(m.name.clone())),
                ("mean_ns".to_string(), Value::UInt(m.mean_ns as u64)),
                ("min_ns".to_string(), Value::UInt(m.min_ns as u64)),
            ];
            if let Some(rate) = m.elements_per_sec() {
                fields.push(("records_per_sec".to_string(), Value::Float(rate)));
            }
            Value::Object(fields)
        })
        .collect();
    let doc = Value::Object(vec![
        ("bench".to_string(), Value::String("server".to_string())),
        (
            "mode".to_string(),
            Value::String(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("rows".to_string(), Value::Array(rows)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("bench rows serialize");
    std::fs::write(&out, json + "\n").expect("write bench artifact");
    println!("[bench] wrote {out}");
}

fn main() {
    let smoke = smoke_mode();
    let mut criterion = Criterion::default();
    bench_server(&mut criterion, smoke);
    write_bench_json(smoke);
}
