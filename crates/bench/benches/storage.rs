//! Micro-benchmarks of the durable storage tier: WAL append throughput, columnar
//! segment sealing (`TopicStorage::commit`), and full recovery replay
//! (`LogTopic::open` — WAL + segments + lineage back to a serving topic). These
//! are the measurements behind the "recovery replays instead of retraining" and
//! "segments load without re-matching a single line" claims — run with
//! `cargo bench --bench storage`.
//!
//! Like `ingest.rs`, this bench has a custom `main`: after the timed runs it
//! drains the harness's measurement registry and writes the machine-readable
//! `BENCH_storage.json` artifact (path override: `BYTEBRAIN_BENCH_OUT`).
//! `BYTEBRAIN_BENCH_SMOKE=1` runs every row at reduced scale so CI can prove the
//! plumbing cheaply; the committed artifact is a full run, where `check_bench`
//! enforces the ≥ 200k records/s floor on segment flush and recovery replay.

use criterion::{BatchSize, Criterion, Throughput};
use datasets::LabeledDataset;
use service::{LogTopic, StorageConfig, TopicConfig, TopicMeta, TopicStorage};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn smoke_mode() -> bool {
    std::env::var("BYTEBRAIN_BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

fn bench_root() -> PathBuf {
    let root = std::env::temp_dir().join(format!("bb-bench-storage-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("create bench scratch root");
    root
}

fn fresh_dir() -> PathBuf {
    bench_root().join(format!(
        "run-{}",
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn corpus(lines: usize) -> Vec<String> {
    LabeledDataset::loghub2("Apache", lines).records
}

/// A fresh storage directory with `records` already appended to the WAL
/// (setup for the sealing benchmark) or none (setup for the append benchmark).
fn fresh_storage(records: &[String]) -> TopicStorage {
    let dir = fresh_dir();
    let meta = TopicMeta::from_config("", "bench", &TopicConfig::new("bench"));
    let mut storage =
        TopicStorage::create(&dir, StorageConfig::default(), &meta).expect("create storage");
    for record in records {
        storage
            .append_record(false, None, record)
            .expect("append record");
    }
    storage
}

fn bench_storage_paths(c: &mut Criterion, smoke: bool) {
    let lines = if smoke { 4_096 } else { 32_768 };
    let records = corpus(lines);

    let mut group = c.benchmark_group("storage");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);

    // CRC-framed WAL appends: the per-record cost every ingest pays.
    group.bench_function("wal_append", |b| {
        b.iter_batched(
            || fresh_storage(&[]),
            |mut storage| {
                for record in &records {
                    storage
                        .append_record(false, None, record)
                        .expect("append record");
                }
                storage.next_seq()
            },
            BatchSize::PerIteration,
        )
    });

    // Sealing the WAL into immutable columnar segments (text + variable columns
    // + per-node postings), manifest write, WAL truncation, one batched fsync.
    group.bench_function("segment_flush", |b| {
        b.iter_batched(
            || fresh_storage(&records),
            |mut storage| {
                let sealed = storage.commit(|_| Vec::new()).expect("commit");
                assert!(sealed > 0, "commit must seal at least one segment");
                sealed
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

fn bench_recovery_replay(c: &mut Criterion, smoke: bool) {
    let lines = if smoke { 4_096 } else { 32_768 };
    let records = corpus(lines);

    // Build the durable topic once: cold-start train on the head, stream the rest
    // through the matcher, let ingest seal segments and lineage as it goes.
    let dir = fresh_dir();
    let config = TopicConfig::new("bench-recovery").with_volume_threshold(u64::MAX);
    let mut topic =
        LogTopic::durable(config, &dir, StorageConfig::default()).expect("create durable topic");
    for chunk in records.chunks(4_096) {
        topic.ingest(chunk);
    }
    let total = topic.records().len() as u64;
    drop(topic);

    let mut group = c.benchmark_group("storage");
    group.throughput(Throughput::Elements(total));
    group.sample_size(10);

    // Full restart path: manifest + segment decode (postings loaded, zero
    // re-matching) + lineage replay + WAL tail, back to a query-serving topic.
    group.bench_function("recovery_replay", |b| {
        b.iter(|| {
            let recovered = LogTopic::open(&dir, StorageConfig::default()).expect("recover");
            assert_eq!(recovered.records().len() as u64, total);
            recovered.model_version()
        })
    });

    group.finish();
}

/// Render the drained measurement registry as the `BENCH_storage.json` artifact.
fn write_bench_json(smoke: bool) {
    use serde::Value;

    let out = std::env::var("BYTEBRAIN_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_storage.json", env!("CARGO_MANIFEST_DIR")));
    let rows: Vec<Value> = criterion::take_measurements()
        .into_iter()
        .map(|m| {
            let mut fields = vec![
                (
                    "group".to_string(),
                    Value::String(m.group.clone().unwrap_or_default()),
                ),
                ("name".to_string(), Value::String(m.name.clone())),
                ("mean_ns".to_string(), Value::UInt(m.mean_ns as u64)),
                ("min_ns".to_string(), Value::UInt(m.min_ns as u64)),
            ];
            if let Some(rate) = m.elements_per_sec() {
                fields.push(("records_per_sec".to_string(), Value::Float(rate)));
            }
            Value::Object(fields)
        })
        .collect();
    let doc = Value::Object(vec![
        ("bench".to_string(), Value::String("storage".to_string())),
        (
            "mode".to_string(),
            Value::String(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("rows".to_string(), Value::Array(rows)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("bench rows serialize");
    std::fs::write(&out, json + "\n").expect("write bench artifact");
    println!("[bench] wrote {out}");
}

fn main() {
    let smoke = smoke_mode();
    let mut criterion = Criterion::default();
    bench_storage_paths(&mut criterion, smoke);
    bench_recovery_replay(&mut criterion, smoke);
    write_bench_json(smoke);
    std::fs::remove_dir_all(bench_root()).ok();
}
