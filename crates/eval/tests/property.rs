//! Randomized property tests for the Grouping Accuracy metric.
//!
//! Ported from proptest to seeded randomized loops (the offline build environment has
//! no proptest); every case is drawn from a fixed-seed [`StdRng`], so failures are
//! deterministic and reproducible.

use eval::ga::{grouping_accuracy, grouping_report};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A random label vector with values in `0..groups` and length in `min_len..max_len`.
fn labels(rng: &mut StdRng, groups: usize, min_len: usize, max_len: usize) -> Vec<usize> {
    let len = rng.gen_range(min_len..max_len);
    (0..len).map(|_| rng.gen_range(0..groups)).collect()
}

/// GA is always within [0, 1].
#[test]
fn ga_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xE7A1);
    for _ in 0..300 {
        let truth = labels(&mut rng, 6, 0, 100);
        let predicted = labels(&mut rng, 6, 0, 100);
        let n = truth.len().min(predicted.len());
        let ga = grouping_accuracy(&predicted[..n], &truth[..n]);
        assert!((0.0..=1.0).contains(&ga));
    }
}

/// Predicting the ground truth exactly always scores 1, and so does any relabelling of
/// the ground-truth groups (group ids are opaque).
#[test]
fn ga_is_invariant_under_relabelling() {
    let mut rng = StdRng::seed_from_u64(0xE7A2);
    for _ in 0..300 {
        let truth = labels(&mut rng, 8, 1, 100);
        let offset = rng.gen_range(1..1000usize);
        assert_eq!(grouping_accuracy(&truth, &truth), 1.0);
        let relabelled: Vec<usize> = truth.iter().map(|&l| l * 7919 + offset).collect();
        assert_eq!(grouping_accuracy(&relabelled, &truth), 1.0);
    }
}

/// Merging two distinct ground-truth groups into one predicted group can never reach
/// accuracy 1 (strictness of the metric).
#[test]
fn merging_groups_is_never_perfect() {
    let mut rng = StdRng::seed_from_u64(0xE7A3);
    let mut checked = 0usize;
    while checked < 200 {
        let truth = labels(&mut rng, 5, 2, 100);
        let distinct: std::collections::HashSet<usize> = truth.iter().copied().collect();
        if distinct.len() < 2 {
            continue;
        }
        checked += 1;
        let merged = vec![0usize; truth.len()];
        assert!(grouping_accuracy(&merged, &truth) < 1.0);
    }
}

/// The number of correct logs never exceeds the total and correct logs come in whole
/// ground-truth groups.
#[test]
fn correct_counts_respect_group_structure() {
    let mut rng = StdRng::seed_from_u64(0xE7A4);
    for _ in 0..200 {
        let truth = labels(&mut rng, 4, 1, 80);
        let predicted = labels(&mut rng, 4, 1, 80);
        let n = truth.len().min(predicted.len());
        let report = grouping_report(&predicted[..n], &truth[..n]);
        assert!(report.correct <= report.total);
        // Group sizes of the truth partition.
        let mut sizes: HashMap<usize, usize> = HashMap::new();
        for &l in &truth[..n] {
            *sizes.entry(l).or_insert(0) += 1;
        }
        // `correct` must be expressible as a sum of whole truth-group sizes.
        let mut achievable = vec![false; report.total + 1];
        achievable[0] = true;
        for size in sizes.values() {
            for i in (0..=report.total.saturating_sub(*size)).rev() {
                if achievable[i] {
                    achievable[i + size] = true;
                }
            }
        }
        assert!(achievable[report.correct]);
    }
}
