//! Property-based tests for the Grouping Accuracy metric.

use eval::ga::{grouping_accuracy, grouping_report};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// GA is always within [0, 1].
    #[test]
    fn ga_is_bounded(labels in prop::collection::vec(0usize..6, 0..100), predicted in prop::collection::vec(0usize..6, 0..100)) {
        let n = labels.len().min(predicted.len());
        let ga = grouping_accuracy(&predicted[..n], &labels[..n]);
        prop_assert!((0.0..=1.0).contains(&ga));
    }

    /// Predicting the ground truth exactly always scores 1, and so does any relabelling
    /// of the ground-truth groups (group ids are opaque).
    #[test]
    fn ga_is_invariant_under_relabelling(labels in prop::collection::vec(0usize..8, 1..100), offset in 1usize..1000) {
        prop_assert_eq!(grouping_accuracy(&labels, &labels), 1.0);
        let relabelled: Vec<usize> = labels.iter().map(|&l| l * 7919 + offset).collect();
        prop_assert_eq!(grouping_accuracy(&relabelled, &labels), 1.0);
    }

    /// Merging two distinct ground-truth groups into one predicted group can never reach
    /// accuracy 1 (strictness of the metric).
    #[test]
    fn merging_groups_is_never_perfect(labels in prop::collection::vec(0usize..5, 2..100)) {
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        prop_assume!(distinct.len() >= 2);
        let merged = vec![0usize; labels.len()];
        prop_assert!(grouping_accuracy(&merged, &labels) < 1.0);
    }

    /// The number of correct logs never exceeds the total and correct logs come in whole
    /// ground-truth groups.
    #[test]
    fn correct_counts_respect_group_structure(labels in prop::collection::vec(0usize..4, 1..80), predicted in prop::collection::vec(0usize..4, 1..80)) {
        let n = labels.len().min(predicted.len());
        let report = grouping_report(&predicted[..n], &labels[..n]);
        prop_assert!(report.correct <= report.total);
        // Group sizes of the truth partition.
        let mut sizes: HashMap<usize, usize> = HashMap::new();
        for &l in &labels[..n] {
            *sizes.entry(l).or_insert(0) += 1;
        }
        // `correct` must be expressible as a sum of whole truth-group sizes.
        let mut achievable = vec![false; report.total + 1];
        achievable[0] = true;
        for size in sizes.values() {
            for i in (0..=report.total.saturating_sub(*size)).rev() {
                if achievable[i] {
                    achievable[i + size] = true;
                }
            }
        }
        prop_assert!(achievable[report.correct]);
    }
}
