//! Grouping Accuracy (GA).
//!
//! GA is the fraction of logs that are *correctly grouped*: a log counts as correct only
//! when the set of logs sharing its predicted group is exactly the set of logs sharing its
//! ground-truth template. The metric is deliberately strict — over-splitting or
//! over-merging a single frequent template penalises every log it covers — which prevents
//! accuracy inflation from easy, frequent patterns (§5.1.3).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Detailed outcome of a grouping-accuracy computation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupingReport {
    /// Number of evaluated logs.
    pub total: usize,
    /// Number of correctly grouped logs.
    pub correct: usize,
    /// Number of predicted groups.
    pub predicted_groups: usize,
    /// Number of ground-truth groups.
    pub truth_groups: usize,
}

impl GroupingReport {
    /// The grouping accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Compute grouping accuracy of `predicted` group ids against `truth` labels.
///
/// # Panics
/// Panics when the two slices have different lengths — that is a harness bug, not a
/// property of the parser being evaluated.
pub fn grouping_report(predicted: &[usize], truth: &[usize]) -> GroupingReport {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "predicted and ground-truth label vectors must have the same length"
    );
    let n = predicted.len();
    // Map each group id to the sorted list of log indices it contains.
    let mut predicted_groups: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut truth_groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        predicted_groups.entry(predicted[i]).or_default().push(i);
        truth_groups.entry(truth[i]).or_default().push(i);
    }
    // A log is correct iff its predicted member set equals its ground-truth member set.
    // Because both are partitions of the same index set, it suffices to compare sizes and
    // verify that every member of the truth group has the same predicted group id.
    let mut correct = 0usize;
    for truth_members in truth_groups.values() {
        let first = truth_members[0];
        let predicted_id = predicted[first];
        let same_prediction = truth_members.iter().all(|&i| predicted[i] == predicted_id);
        if same_prediction && predicted_groups[&predicted_id].len() == truth_members.len() {
            correct += truth_members.len();
        }
    }
    GroupingReport {
        total: n,
        correct,
        predicted_groups: predicted_groups.len(),
        truth_groups: truth_groups.len(),
    }
}

/// Convenience wrapper returning only the accuracy value.
pub fn grouping_accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    grouping_report(predicted, truth).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_grouping_scores_one() {
        let truth = vec![0, 0, 1, 1, 2];
        let predicted = vec![7, 7, 3, 3, 9];
        assert_eq!(grouping_accuracy(&predicted, &truth), 1.0);
    }

    #[test]
    fn group_ids_do_not_need_to_match_labels() {
        let truth = vec![5, 5, 8];
        let predicted = vec![0, 0, 1];
        assert_eq!(grouping_accuracy(&predicted, &truth), 1.0);
    }

    #[test]
    fn over_merging_penalises_both_groups() {
        // Two truth templates merged into one predicted group: every log is wrong.
        let truth = vec![0, 0, 1, 1];
        let predicted = vec![0, 0, 0, 0];
        assert_eq!(grouping_accuracy(&predicted, &truth), 0.0);
    }

    #[test]
    fn over_splitting_penalises_the_split_group_only() {
        // Truth group {0,1,2} split into {0,1} and {2}; group {3,4} is intact.
        let truth = vec![0, 0, 0, 1, 1];
        let predicted = vec![0, 0, 5, 2, 2];
        let report = grouping_report(&predicted, &truth);
        assert_eq!(report.correct, 2);
        assert!((report.accuracy() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn single_log_groups_count_when_exact() {
        let truth = vec![0, 1, 2, 3];
        let predicted = vec![9, 8, 7, 6];
        assert_eq!(grouping_accuracy(&predicted, &truth), 1.0);
    }

    #[test]
    fn empty_input_is_perfect() {
        assert_eq!(grouping_accuracy(&[], &[]), 1.0);
    }

    #[test]
    fn report_counts_groups() {
        let truth = vec![0, 0, 1, 2];
        let predicted = vec![4, 4, 4, 5];
        let report = grouping_report(&predicted, &truth);
        assert_eq!(report.predicted_groups, 2);
        assert_eq!(report.truth_groups, 3);
        assert_eq!(report.total, 4);
        // {0,0} predicted together with log 2 → wrong; log 3 alone → right.
        assert_eq!(report.correct, 1);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        grouping_accuracy(&[0, 1], &[0]);
    }

    #[test]
    fn strictness_mirrors_the_paper_example() {
        // A frequent template predicted correctly dominates the score only in proportion
        // to its size; a rare template grouped wrongly still costs its logs.
        let mut truth = vec![0; 95];
        truth.extend(vec![1; 5]);
        let mut predicted = vec![0; 95];
        predicted.extend(vec![0; 5]); // rare template merged into the frequent one
        let report = grouping_report(&predicted, &truth);
        assert_eq!(
            report.correct, 0,
            "merging poisons both groups under strict GA"
        );
    }
}
