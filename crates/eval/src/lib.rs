//! `eval` — evaluation metrics and experiment plumbing (§5.1.3).
//!
//! * [`ga`]: Grouping Accuracy, the strict metric used throughout the paper's accuracy
//!   tables (a log is correct only if its predicted group contains *exactly* the set of
//!   logs sharing its ground-truth template).
//! * [`throughput`]: wall-clock throughput measurement (training + matching combined, as
//!   the paper defines it).
//! * [`report`]: small helpers for printing the tables/figures the bench harness emits and
//!   recording machine-readable results.

pub mod ga;
pub mod report;
pub mod throughput;

pub use ga::{grouping_accuracy, GroupingReport};
pub use throughput::{measure, ThroughputMeasurement};
