//! Throughput measurement.
//!
//! The paper reports throughput as total log count divided by the combined time of model
//! training and log matching (§5.1.3). [`measure`] wraps an arbitrary closure that
//! performs both phases and returns logs/second together with the raw elapsed time so
//! experiments can also report scaling curves (Fig. 7) and parallelism sweeps (Fig. 12).

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Result of one throughput measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputMeasurement {
    /// Number of logs processed.
    pub num_logs: usize,
    /// Wall-clock duration of the measured closure, in seconds.
    pub seconds: f64,
    /// Logs per second.
    pub logs_per_second: f64,
}

impl ThroughputMeasurement {
    /// Build a measurement from a log count and a duration.
    pub fn from_duration(num_logs: usize, elapsed: Duration) -> Self {
        let seconds = elapsed.as_secs_f64();
        let logs_per_second = if seconds > 0.0 {
            num_logs as f64 / seconds
        } else {
            f64::INFINITY
        };
        ThroughputMeasurement {
            num_logs,
            seconds,
            logs_per_second,
        }
    }
}

/// Measure the wall-clock throughput of `work` over `num_logs` logs. The closure should
/// perform the full pipeline being measured (training + matching for parser throughput).
pub fn measure<F: FnOnce()>(num_logs: usize, work: F) -> ThroughputMeasurement {
    let start = Instant::now();
    work();
    ThroughputMeasurement::from_duration(num_logs, start.elapsed())
}

/// Measure `work` and also return its result.
pub fn measure_with_result<T, F: FnOnce() -> T>(
    num_logs: usize,
    work: F,
) -> (ThroughputMeasurement, T) {
    let start = Instant::now();
    let result = work();
    (
        ThroughputMeasurement::from_duration(num_logs, start.elapsed()),
        result,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_count_over_time() {
        let m = ThroughputMeasurement::from_duration(1_000, Duration::from_millis(500));
        assert!((m.logs_per_second - 2_000.0).abs() < 1.0);
        assert_eq!(m.num_logs, 1_000);
    }

    #[test]
    fn measure_times_the_closure() {
        let m = measure(100, || std::thread::sleep(Duration::from_millis(20)));
        assert!(m.seconds >= 0.02);
        assert!(m.logs_per_second < 100.0 / 0.02 + 1.0);
    }

    #[test]
    fn measure_with_result_passes_value_through() {
        let (m, value) = measure_with_result(10, || 42);
        assert_eq!(value, 42);
        assert_eq!(m.num_logs, 10);
    }

    #[test]
    fn zero_duration_does_not_divide_by_zero() {
        let m = ThroughputMeasurement::from_duration(5, Duration::from_secs(0));
        assert!(m.logs_per_second.is_infinite());
    }
}
