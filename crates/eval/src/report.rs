//! Helpers for printing experiment tables and persisting machine-readable results.
//!
//! Every experiment binary in the bench harness prints a human-readable table (the same
//! rows/series as the corresponding paper table or figure) and can additionally dump a
//! JSON record so `EXPERIMENTS.md` can be regenerated from raw results.

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row. Rows shorter than the header are padded with empty cells.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        while cells.len() < self.headers.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let separator: String = widths.iter().map(|w| "-".repeat(*w) + "  ").collect();
        out.push_str(separator.trim_end());
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// A machine-readable experiment result: experiment id plus arbitrary named series.
#[derive(Debug, Serialize)]
pub struct ExperimentRecord {
    /// Experiment identifier, e.g. `"table2"` or `"fig7"`.
    pub experiment: String,
    /// Free-form description.
    pub description: String,
    /// Named numeric results (kept sorted for stable output).
    pub values: BTreeMap<String, f64>,
}

impl ExperimentRecord {
    /// Create an empty record.
    pub fn new(experiment: &str, description: &str) -> Self {
        ExperimentRecord {
            experiment: experiment.to_string(),
            description: description.to_string(),
            values: BTreeMap::new(),
        }
    }

    /// Insert one named value.
    pub fn insert(&mut self, key: &str, value: f64) {
        self.values.insert(key.to_string(), value);
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("experiment record serializes")
    }

    /// Write the JSON record under `dir/<experiment>.json` (directory is created).
    pub fn write_to(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Format a floating-point value the way the paper's tables do (two decimals).
pub fn fmt2(value: f64) -> String {
    format!("{value:.2}")
}

/// Format a throughput value in scientific notation as in Fig. 6 (e.g. `2.29e+05`).
pub fn fmt_sci(value: f64) -> String {
    format!("{value:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Dataset", "GA"]);
        t.add_row(vec!["HDFS", "0.98"]);
        t.add_row(vec!["Thunderbird", "0.96"]);
        let rendered = t.render();
        assert!(rendered.contains("Dataset"));
        assert!(rendered.contains("Thunderbird"));
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn record_round_trips_to_json() {
        let mut r = ExperimentRecord::new("fig7", "scaling");
        r.insert("hdfs_10000", 123.4);
        let json = r.to_json();
        assert!(json.contains("fig7"));
        assert!(json.contains("hdfs_10000"));
    }

    #[test]
    fn record_writes_to_disk() {
        let dir = std::env::temp_dir().join("bytebrain_eval_report_test");
        let r = ExperimentRecord::new("unit_test_record", "test");
        let path = r.write_to(&dir).unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt2(0.98765), "0.99");
        assert_eq!(fmt_sci(229_000.0), "2.29e5");
    }
}
